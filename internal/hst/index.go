package hst

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"unsafe"
)

// LeafIndex is a trie over leaf codes supporting O(D) insertion, removal,
// and nearest-leaf queries in tree distance. The HST-Greedy matcher uses it
// to find, for an arriving task, an unassigned worker with the deepest
// common code prefix — i.e. minimal LCA level, i.e. minimal tree distance.
//
// Among equidistant items the index deterministically returns the smallest
// id, which makes it assignment-for-assignment identical to the O(n)
// scanning implementation of Alg. 4 (which also resolves ties towards the
// lowest index). Multiple items may share a leaf code (several workers can
// be obfuscated to the same leaf).
//
// Layout: the index is arena-backed. All trie nodes live in one contiguous
// []flatNode slab and refer to each other by int32 index, so descent walks
// the slab instead of chasing heap pointers. Children are resolved through
// dense per-node blocks of the child arena (one int32 slot per digit,
// available when the tree degree is known and ≤ denseDegreeLimit) or, for
// larger or unknown degrees, through digit-tagged sibling lists carried in
// per-node side slabs (digits, sibs). Leaf items sit in a third slab as
// singly-linked slots. Nodes, child blocks, and item slots freed when a
// subtree empties go on freelists and are reused by later inserts, and the
// root-to-leaf path scratch is owned by the index, so in steady state
// (inserts balancing removals) no operation allocates.
//
// Items carry a remaining capacity (Insert seeds 1, InsertCap more): the
// pop operations consume one unit and remove the item only when its last
// unit goes, so a multi-capacity worker keeps answering nearest-queries
// until exhausted. Remove always takes the whole item (a withdrawal), and
// AddCap/Consume adjust a live item's units in place. Len counts items;
// Units counts remaining capacity.
//
// Like its map-based predecessor, LeafIndex is not safe for concurrent use;
// callers serialise access (the sharded engine drives one index per shard
// under that shard's lock, which also makes the shared path scratch safe).
type LeafIndex struct {
	depth  int
	degree int // dense child-block width; 0 = sparse sibling lists
	size   int // live items
	units  int // Σ remaining capacity over live items

	nodes []flatNode // node arena; index 0 is the root
	kids  []int32    // dense child arena: blocks of degree slots, nilIdx = absent
	items []itemSlot // leaf item arena

	// digits and sibs are per-node side slabs grown in lockstep with nodes:
	// packing a one-byte digit (or a link only sparse layouts use) into
	// flatNode itself would pad every node back up, so at million-worker
	// scale they live outside. digits[ni] is ni's child digit under its
	// parent; sibs[ni] is ni's next sibling, allocated only for sparse
	// (degree-0) indexes — dense indexes resolve children through kids
	// blocks and never link siblings.
	digits []uint8
	sibs   []int32

	// capExtra pools the capacity metadata for the rare multi-unit items:
	// slot → remaining units, present only while the item holds > 1. The
	// common capacity-1 population (every greedy deployment) pays zero
	// bytes and a nil-map check per pop instead of 4 bytes per item slot.
	capExtra map[int32]int32

	freeNode  int32   // head of the freed-node list (linked through flatNode.kids)
	freeItem  int32   // head of the freed-item list (linked through itemSlot.next)
	freeBlock []int32 // freed dense child-block offsets
	freeNodes int     // length of the freed-node list
	freeItems int     // length of the freed-item list

	path []int32 // reusable root-to-leaf descent scratch
	cbuf []byte  // reusable candidate-code scratch (cap depth, so collect never grows it)

	// insertGen counts inserts. Inserts are the only mutation that can grow
	// the arena or reuse freed slots, i.e. the only way a CandidateRef held
	// across an unlock can come to point at a *different* live item, so a
	// caller that recorded the generation at mining time can tell "my refs
	// are at worst consumed" (generation unchanged) from "my refs may be
	// lies" (generation moved). Removals and pops never bump it.
	insertGen uint64
}

// flatNode is one trie position in the arena. 20 bytes (pinned by test):
// the child digit lives in the digits side slab and sparse sibling links in
// sibs, so a 10M-worker shard stays within the int32 arena range with room
// to spare and a realistic shard fits in L2.
type flatNode struct {
	count  int32 // live items in this subtree (≥ 1 for every allocated non-root node)
	minID  int32 // smallest live item id in this subtree (noItem32 when none)
	kids   int32 // dense: child-block offset into LeafIndex.kids; sparse: first child node; freed: freelist link
	items  int32 // head of this leaf's item-slot list (nilIdx on freed nodes, so stale refs probe empty)
	parent int32 // parent node (nilIdx for the root), for ref-based commits
}

// itemSlot is one leaf item. 8 bytes: the remaining-capacity counter for the
// rare multi-unit item is pooled in LeafIndex.capExtra instead of burning a
// third of every slot on a field that is 1 almost everywhere.
type itemSlot struct {
	id   int32
	next int32
}

const (
	nilIdx   = int32(-1)
	noItem32 = int32(math.MaxInt32)

	// denseDegreeLimit bounds the child-block width: degrees above it fall
	// back to sparse sibling lists (a dense block per node would waste
	// arena space on mostly-absent digits).
	denseDegreeLimit = 32
)

// ErrIndexFull reports that an insert would grow an arena slab past the
// index's int32 addressing range. Every arena length→int32 conversion is
// guarded by a preflight against this limit, so the index refuses loudly at
// the ceiling instead of silently wrapping node references negative. The
// check is conservative — an insert whose path partially exists may be
// refused one insert early — and removals keep working at the ceiling, so
// a caller can shed load and continue.
var ErrIndexFull = errors.New("hst: index arena full")

// maxArenaLen is the per-slab entry ceiling the ErrIndexFull preflight
// enforces: int32 indexes address at most MaxInt32 entries. A variable so
// overflow regression tests can lower it to something reachable.
var maxArenaLen = int64(math.MaxInt32)

// roomFor errs when inserting a full root-to-leaf path plus one item could
// grow any arena past maxArenaLen. Worst case an insert allocates depth
// fresh nodes, depth dense child blocks (degree slots each), and one item
// slot; freelisted entries are reused before the slabs grow, so they count
// against the demand.
func (x *LeafIndex) roomFor() error {
	if need := int64(x.depth - x.freeNodes); need > 0 && int64(len(x.nodes))+need > maxArenaLen {
		return fmt.Errorf("%w: %d nodes + %d would exceed %d", ErrIndexFull, len(x.nodes), need, maxArenaLen)
	}
	if x.degree > 0 {
		if blocks := int64(x.depth - len(x.freeBlock)); blocks > 0 && int64(len(x.kids))+blocks*int64(x.degree) > maxArenaLen {
			return fmt.Errorf("%w: %d child slots + %d would exceed %d", ErrIndexFull, len(x.kids), blocks*int64(x.degree), maxArenaLen)
		}
	}
	if x.freeItems == 0 && int64(len(x.items))+1 > maxArenaLen {
		return fmt.Errorf("%w: %d item slots + 1 would exceed %d", ErrIndexFull, len(x.items), maxArenaLen)
	}
	return nil
}

// NewLeafIndex returns an empty index for codes of the given depth. The
// tree degree is unknown, so children use the sparse representation; when
// the degree is available, prefer NewLeafIndexDegree.
func NewLeafIndex(depth int) *LeafIndex {
	return NewLeafIndexDegree(depth, 0)
}

// NewLeafIndexDegree returns an empty index for codes of the given depth
// over a tree with the given branching factor. Degrees in [1,
// denseDegreeLimit] select dense per-node child blocks with O(1) digit
// lookup; 0 (unknown) or larger degrees select sparse sibling lists.
func NewLeafIndexDegree(depth, degree int) *LeafIndex {
	if degree < 0 || degree > denseDegreeLimit {
		degree = 0
	}
	x := &LeafIndex{
		depth:  depth,
		degree: degree,
		nodes:  make([]flatNode, 1, 64),
		digits: make([]uint8, 1, 64),
		path:   make([]int32, 0, depth+1),
		cbuf:   make([]byte, 0, depth),

		freeNode: nilIdx,
		freeItem: nilIdx,
	}
	if degree == 0 {
		x.sibs = make([]int32, 1, 64)
		x.sibs[0] = nilIdx
	}
	x.nodes[0] = flatNode{minID: noItem32, kids: nilIdx, items: nilIdx, parent: nilIdx}
	return x
}

// ArenaBytes returns the bytes the index's arena slabs currently reserve
// (capacities, not lengths, since grown capacity stays resident), plus an
// estimate for the pooled capacity map. It is the index's contribution to
// a bytes-per-worker accounting; per-operation scratch is excluded.
func (x *LeafIndex) ArenaBytes() int64 {
	b := int64(cap(x.nodes)) * int64(unsafe.Sizeof(flatNode{}))
	b += int64(cap(x.digits))
	b += int64(cap(x.sibs)) * 4
	b += int64(cap(x.kids)) * 4
	b += int64(cap(x.items)) * int64(unsafe.Sizeof(itemSlot{}))
	b += int64(cap(x.freeBlock)) * 4
	b += int64(len(x.capExtra)) * 12 // ≈ key+value+bucket overhead per pooled entry
	return b
}

// ArenaLens reports the current entry counts of the three arena slabs
// (freelisted entries included) — the sizing hint a same-population bulk
// load passes to Reserve.
func (x *LeafIndex) ArenaLens() (nodes, kids, items int) {
	return len(x.nodes), len(x.kids), len(x.items)
}

// Reserve pre-grows the arena slabs to capacity for at least the given
// entry counts, so a bulk load of known size (an epoch swap replaying its
// population) allocates each slab once instead of climbing the append
// doubling ladder — at ten million workers that ladder's dead half-size
// slabs are themselves a population's worth of transient garbage. Counts
// at or below current capacity do nothing; counts above the int32 arena
// ceiling are clamped to it (inserts past the ceiling still refuse with
// ErrIndexFull). Reserve never shrinks and cannot fail.
func (x *LeafIndex) Reserve(nodes, kids, items int) {
	clamp := func(n int) int {
		if int64(n) > maxArenaLen {
			return int(maxArenaLen)
		}
		return n
	}
	if n := clamp(nodes); n > cap(x.nodes) {
		x.nodes = append(make([]flatNode, 0, n), x.nodes...)
		x.digits = append(make([]uint8, 0, n), x.digits...)
		if x.degree == 0 {
			x.sibs = append(make([]int32, 0, n), x.sibs...)
		}
	}
	if x.degree > 0 {
		if n := clamp(kids); n > cap(x.kids) {
			x.kids = append(make([]int32, 0, n), x.kids...)
		}
	}
	if n := clamp(items); n > cap(x.items) {
		x.items = append(make([]itemSlot, 0, n), x.items...)
	}
}

// Len returns the number of items currently indexed.
func (x *LeafIndex) Len() int { return x.size }

// Units returns the total remaining capacity across all items. For a
// capacity-1 population it equals Len.
func (x *LeafIndex) Units() int { return x.units }

// Insert adds an item id with capacity 1 at the given leaf code. Ids must
// be non-negative and fit in an int32. With a dense child layout every
// digit must be below the declared degree.
func (x *LeafIndex) Insert(code Code, id int) error {
	return x.InsertCap(code, id, 1)
}

// InsertCap is Insert with an explicit remaining capacity (≥ 1): the item
// answers nearest-queries until capacity pops have consumed it.
func (x *LeafIndex) InsertCap(code Code, id, capacity int) error {
	if capacity < 1 {
		return fmt.Errorf("hst: item capacity must be positive, got %d", capacity)
	}
	if capacity > math.MaxInt32 {
		return fmt.Errorf("hst: item capacity %d exceeds the index's int32 range", capacity)
	}
	if len(code) != x.depth {
		return fmt.Errorf("hst: code length %d, index depth %d", len(code), x.depth)
	}
	if id < 0 {
		return fmt.Errorf("hst: item id must be non-negative, got %d", id)
	}
	if id > math.MaxInt32 {
		return fmt.Errorf("hst: item id %d exceeds the index's int32 range", id)
	}
	if x.degree > 0 {
		// Validate before mutating anything: a dense block is indexed by
		// digit, so an out-of-range digit must not corrupt counts.
		for j := 0; j < x.depth; j++ {
			if int(code[j]) >= x.degree {
				return fmt.Errorf("hst: digit %d at position %d exceeds index degree %d", code[j], j, x.degree)
			}
		}
	}
	// Arena overflow is checked up front for the same reason: counts are
	// bumped while descending, so running out of arena mid-path would leave
	// them corrupt.
	if err := x.roomFor(); err != nil {
		return err
	}
	id32 := int32(id)
	ni := int32(0)
	x.bump(ni, id32)
	for j := 0; j < x.depth; j++ {
		ci := x.child(ni, code[j])
		if ci == nilIdx {
			ci = x.addChild(ni, code[j])
		}
		x.bump(ci, id32)
		ni = ci
	}
	si := x.allocItem(id32, int32(capacity))
	x.items[si].next = x.nodes[ni].items
	x.nodes[ni].items = si
	x.size++
	x.units += capacity
	x.insertGen++
	return nil
}

// InsertGen returns the index's insert generation: a counter bumped by
// every successful insert and by nothing else. Refs mined at generation g
// are structurally trustworthy while the generation stays g — intervening
// removals can only have consumed them (RefUnits reports that), never
// redirected them at another item.
func (x *LeafIndex) InsertGen() uint64 { return x.insertGen }

// bump increments a node's count and folds id into its subtree minimum.
func (x *LeafIndex) bump(ni, id int32) {
	n := &x.nodes[ni]
	n.count++
	if id < n.minID {
		n.minID = id
	}
}

// child resolves the child of node ni holding the given digit, or nilIdx.
func (x *LeafIndex) child(ni int32, digit byte) int32 {
	n := &x.nodes[ni]
	if x.degree > 0 {
		if n.kids == nilIdx {
			return nilIdx
		}
		if int(digit) >= x.degree {
			return nilIdx
		}
		return x.kids[n.kids+int32(digit)]
	}
	for ci := n.kids; ci != nilIdx; ci = x.sibs[ci] {
		if x.digits[ci] == digit {
			return ci
		}
	}
	return nilIdx
}

// addChild allocates a child of ni for the given digit and links it in.
func (x *LeafIndex) addChild(ni int32, digit byte) int32 {
	ci := x.allocNode(digit)
	x.nodes[ci].parent = ni
	if x.degree > 0 {
		blk := x.nodes[ni].kids
		if blk == nilIdx {
			blk = x.allocBlock()
			x.nodes[ni].kids = blk
		}
		x.kids[blk+int32(digit)] = ci
	} else {
		x.sibs[ci] = x.nodes[ni].kids
		x.nodes[ni].kids = ci
	}
	return ci
}

// allocNode takes a node off the freelist or grows the arena (the InsertCap
// preflight guarantees room). Callers must not hold *flatNode pointers
// across the call: growth may move the slab.
func (x *LeafIndex) allocNode(digit byte) int32 {
	var ni int32
	if x.freeNode != nilIdx {
		ni = x.freeNode
		x.freeNode = x.nodes[ni].kids
		x.freeNodes--
	} else {
		ni = int32(len(x.nodes))
		x.nodes = append(x.nodes, flatNode{})
		x.digits = append(x.digits, 0)
		if x.degree == 0 {
			x.sibs = append(x.sibs, 0)
		}
	}
	x.nodes[ni] = flatNode{minID: noItem32, kids: nilIdx, items: nilIdx}
	x.digits[ni] = digit
	if x.degree == 0 {
		x.sibs[ni] = nilIdx
	}
	return ni
}

// allocBlock takes a dense child block off the freelist or grows the child
// arena. Freed blocks are all-nilIdx by the count invariant (a node is
// freed only after all of its children were), so reuse needs no clearing.
func (x *LeafIndex) allocBlock() int32 {
	if n := len(x.freeBlock); n > 0 {
		off := x.freeBlock[n-1]
		x.freeBlock = x.freeBlock[:n-1]
		return off
	}
	off := int32(len(x.kids))
	for i := 0; i < x.degree; i++ {
		x.kids = append(x.kids, nilIdx)
	}
	return off
}

func (x *LeafIndex) allocItem(id, capacity int32) int32 {
	var si int32
	if x.freeItem != nilIdx {
		si = x.freeItem
		x.freeItem = x.items[si].next
		x.freeItems--
	} else {
		si = int32(len(x.items))
		x.items = append(x.items, itemSlot{})
	}
	x.items[si] = itemSlot{id: id, next: nilIdx}
	x.setItemCap(si, capacity)
	return si
}

// itemCap resolves an item slot's remaining capacity: 1 unless the slot has
// a pooled multi-unit entry. The nil-map fast path keeps capacity-1
// populations — every greedy deployment — free of map traffic on pops.
func (x *LeafIndex) itemCap(si int32) int32 {
	if x.capExtra == nil {
		return 1
	}
	if c, ok := x.capExtra[si]; ok {
		return c
	}
	return 1
}

// setItemCap records an item slot's remaining capacity in the pooled map,
// keeping the map minimal: entries exist only while capacity exceeds 1, so
// a slot returned to the freelist can never leak units to its next tenant.
func (x *LeafIndex) setItemCap(si, c int32) {
	if c <= 1 {
		if x.capExtra != nil {
			delete(x.capExtra, si)
		}
		return
	}
	if x.capExtra == nil {
		x.capExtra = make(map[int32]int32)
	}
	x.capExtra[si] = c
}

// freeNodeAt returns an empty node (count 0, no items, no live children) to
// the freelist, releasing its dense child block if it ever grew one.
func (x *LeafIndex) freeNodeAt(ni int32) {
	n := &x.nodes[ni]
	if x.degree > 0 && n.kids != nilIdx {
		x.freeBlock = append(x.freeBlock, n.kids)
	}
	// The freelist threads through kids, never items: a stale CandidateRef
	// may still probe a freed node (RefUnits, ConsumeRef), and walking items
	// there must read an empty list, not a freelist link.
	n.kids = x.freeNode
	n.items = nilIdx
	x.freeNode = ni
	x.freeNodes++
}

// unlinkChild detaches child ci from parent pi.
func (x *LeafIndex) unlinkChild(pi, ci int32) {
	if x.degree > 0 {
		x.kids[x.nodes[pi].kids+int32(x.digits[ci])] = nilIdx
		return
	}
	prev := nilIdx
	for cur := x.nodes[pi].kids; cur != nilIdx; cur = x.sibs[cur] {
		if cur == ci {
			if prev == nilIdx {
				x.nodes[pi].kids = x.sibs[ci]
			} else {
				x.sibs[prev] = x.sibs[ci]
			}
			return
		}
		prev = cur
	}
}

// Remove deletes one occurrence of id at the given leaf code — the whole
// item, whatever capacity it has left (a withdrawal, not a pop). It reports
// whether the item was present.
func (x *LeafIndex) Remove(code Code, id int) bool {
	_, ok := x.RemoveUnits(code, id)
	return ok
}

// RemoveUnits is Remove reporting how many capacity units the removed item
// still carried — the ground truth a caller relocating a live item needs,
// since concurrent pops may have consumed units its own accounting has not
// seen yet.
func (x *LeafIndex) RemoveUnits(code Code, id int) (units int, ok bool) {
	if len(code) != x.depth || id < 0 || id > math.MaxInt32 {
		return 0, false
	}
	// Locate the leaf first so failed removals do not corrupt counts.
	path := x.path[:0]
	ni := int32(0)
	path = append(path, ni)
	for j := 0; j < x.depth; j++ {
		ni = x.child(ni, code[j])
		if ni == nilIdx {
			return 0, false
		}
		path = append(path, ni)
	}
	removed, ok := x.removeItem(ni, int32(id))
	if !ok {
		return 0, false
	}
	x.repair(path, int32(id))
	x.size--
	x.units -= int(removed)
	return int(removed), true
}

// removeItem unlinks one occurrence of id from the leaf's item list,
// returning the capacity it still carried.
func (x *LeafIndex) removeItem(ni, id int32) (capacity int32, ok bool) {
	prev := nilIdx
	for si := x.nodes[ni].items; si != nilIdx; si = x.items[si].next {
		if x.items[si].id == id {
			if prev == nilIdx {
				x.nodes[ni].items = x.items[si].next
			} else {
				x.items[prev].next = x.items[si].next
			}
			capacity = x.itemCap(si)
			x.setItemCap(si, 1) // drop any pooled entry before the slot is reused
			x.items[si].next = x.freeItem
			x.freeItem = si
			x.freeItems++
			return capacity, true
		}
		prev = si
	}
	return 0, false
}

// consumeItem takes one capacity unit from id's item at leaf ni, unlinking
// the item when its last unit goes. removed reports a structural removal
// (the caller must then repair counts along the path).
func (x *LeafIndex) consumeItem(ni, id int32) (removed, ok bool) {
	for si := x.nodes[ni].items; si != nilIdx; si = x.items[si].next {
		if x.items[si].id == id {
			if c := x.itemCap(si); c > 1 {
				x.setItemCap(si, c-1)
				x.units--
				return false, true
			}
			x.removeItem(ni, id)
			x.units--
			return true, true
		}
	}
	return false, false
}

// AddCap returns delta (≥ 1) capacity units to the live item id at the
// given leaf code, reporting whether the item was found. Callers restoring
// a fully consumed (hence removed) item use InsertCap instead.
func (x *LeafIndex) AddCap(code Code, id, delta int) bool {
	if len(code) != x.depth || id < 0 || id > math.MaxInt32 || delta < 1 {
		return false
	}
	ni := int32(0)
	for j := 0; j < x.depth; j++ {
		ni = x.child(ni, code[j])
		if ni == nilIdx {
			return false
		}
	}
	for si := x.nodes[ni].items; si != nilIdx; si = x.items[si].next {
		if x.items[si].id == int32(id) {
			x.setItemCap(si, x.itemCap(si)+int32(delta))
			x.units += delta
			return true
		}
	}
	return false
}

// Consume takes one capacity unit from the item id at the given leaf code,
// removing the item when its last unit goes. It reports whether the item
// was present. Policies that enumerate candidates non-destructively
// (NearestK, CollectWithin) commit their chosen assignments through it.
func (x *LeafIndex) Consume(code Code, id int) bool {
	if len(code) != x.depth || id < 0 || id > math.MaxInt32 {
		return false
	}
	path := x.path[:0]
	ni := int32(0)
	path = append(path, ni)
	for j := 0; j < x.depth; j++ {
		ni = x.child(ni, code[j])
		if ni == nilIdx {
			return false
		}
		path = append(path, ni)
	}
	removed, ok := x.consumeItem(ni, int32(id))
	if !ok {
		return false
	}
	if removed {
		x.repair(path, int32(id))
		x.size--
	}
	return true
}

// repair walks a root-anchored path bottom-up after the removal of id:
// counts drop, emptied nodes are unlinked and freed, and a node's subtree
// minimum is recomputed only when the removed id was that minimum — the
// only case in which it can have changed.
func (x *LeafIndex) repair(path []int32, id int32) {
	for i := len(path) - 1; i >= 1; i-- {
		ni := path[i]
		n := &x.nodes[ni]
		n.count--
		if n.count == 0 {
			x.unlinkChild(path[i-1], ni)
			x.freeNodeAt(ni)
		} else if n.minID == id {
			n.minID = x.recomputeMin(ni)
		}
	}
	r := &x.nodes[0]
	r.count--
	if r.minID == id {
		r.minID = x.recomputeMin(0)
	}
}

// recomputeMin scans a node's own items and its live children for the
// smallest id (noItem32 when the subtree is empty).
func (x *LeafIndex) recomputeMin(ni int32) int32 {
	n := &x.nodes[ni]
	min := noItem32
	for si := n.items; si != nilIdx; si = x.items[si].next {
		if x.items[si].id < min {
			min = x.items[si].id
		}
	}
	if x.degree > 0 {
		if n.kids != nilIdx {
			blk := x.kids[n.kids : n.kids+int32(x.degree)]
			for _, ci := range blk {
				if ci != nilIdx && x.nodes[ci].minID < min {
					min = x.nodes[ci].minID
				}
			}
		}
	} else {
		for ci := n.kids; ci != nilIdx; ci = x.sibs[ci] {
			if x.nodes[ci].minID < min {
				min = x.nodes[ci].minID
			}
		}
	}
	return min
}

// Nearest returns the smallest-id item whose code has the deepest common
// prefix with the query code, along with the resulting LCA level (0 when
// the item sits on the query leaf itself). ok is false when the index is
// empty or the code is malformed.
func (x *LeafIndex) Nearest(code Code) (id, lcaLevel int, ok bool) {
	if x.size == 0 || len(code) != x.depth {
		return 0, 0, false
	}
	ni := int32(0)
	j := 0
	for j < x.depth {
		ci := x.child(ni, code[j])
		if ci == nilIdx {
			break
		}
		ni = ci
		j++
	}
	// Every live item under ni shares exactly the first j digits with the
	// query (the exact branch below ni is exhausted), so all of them are at
	// LCA level depth−j — the minimum possible — and minID picks the
	// deterministic representative.
	return int(x.nodes[ni].minID), x.depth - j, true
}

// MinID returns the smallest live item id. ok is false when the index is
// empty. The assignment engine uses it to break cross-shard ties towards
// the lowest id, matching the scanning implementation of Alg. 4.
func (x *LeafIndex) MinID() (int, bool) {
	if x.size == 0 {
		return 0, false
	}
	return int(x.nodes[0].minID), true
}

// CountPrefix returns the number of live items whose code starts with the
// given prefix — the occupancy of the complete-tree node the prefix
// identifies (level D−len(prefix)). An empty prefix counts everything.
func (x *LeafIndex) CountPrefix(prefix Code) int {
	if len(prefix) > x.depth {
		return 0
	}
	ni := int32(0)
	for j := 0; j < len(prefix); j++ {
		ni = x.child(ni, prefix[j])
		if ni == nilIdx {
			return 0
		}
	}
	return int(x.nodes[ni].count)
}

// PopNearest atomically finds and removes the item Nearest would return:
// the smallest-id item with the deepest common code prefix with the query.
// Unlike Nearest+Remove it needs no external code table and traverses the
// trie once down and once up.
func (x *LeafIndex) PopNearest(code Code) (id, lcaLevel int, ok bool) {
	return x.PopNearestWithin(code, x.depth)
}

// PopNearestWithin is PopNearest restricted to candidates whose LCA with
// the query sits at level ≤ maxLevel: when even the nearest item is farther,
// nothing is removed and ok is false (lcaLevel still reports the level the
// nearest item would have had). The sharded engine uses it to detect when a
// query must fall back to a cross-shard search.
func (x *LeafIndex) PopNearestWithin(code Code, maxLevel int) (id, lcaLevel int, ok bool) {
	if x.size == 0 || len(code) != x.depth {
		return 0, 0, false
	}
	path := x.path[:0]
	ni := int32(0)
	path = append(path, ni)
	j := 0
	for j < x.depth {
		ci := x.child(ni, code[j])
		if ci == nilIdx {
			break
		}
		ni = ci
		path = append(path, ni)
		j++
	}
	lvl := x.depth - j
	if lvl > maxLevel {
		return 0, lvl, false
	}
	return x.popMinFrom(path), lvl, true
}

// PopNearestWithinCode is PopNearestWithin that additionally writes the
// popped item's leaf code into dst[:depth]. The batch engine's speculative
// shard-parallel path uses it to record an undo token per pop: the (code,
// id) pair is exactly what AddCap/InsertCap need to put the consumed unit
// back when a deterministic fallback pass rewinds a shard. dst must have
// room for depth digits; it is written only on a successful pop.
func (x *LeafIndex) PopNearestWithinCode(code Code, maxLevel int, dst []byte) (id, lcaLevel int, ok bool) {
	if x.size == 0 || len(code) != x.depth || len(dst) < x.depth {
		return 0, 0, false
	}
	path := x.path[:0]
	ni := int32(0)
	path = append(path, ni)
	j := 0
	for j < x.depth {
		ci := x.child(ni, code[j])
		if ci == nilIdx {
			break
		}
		ni = ci
		path = append(path, ni)
		j++
	}
	lvl := x.depth - j
	if lvl > maxLevel {
		return 0, lvl, false
	}
	// The first j digits of the popped leaf are the query's own (the exact
	// branch matched that far); the rest come off the descent to the minID
	// leaf, each node carrying its digit under its parent.
	copy(dst, code[:j])
	target := x.nodes[ni].minID
	for depthAt := j; depthAt < x.depth; depthAt++ {
		ni = x.childWithMin(ni, target)
		dst[depthAt] = x.digits[ni]
		path = append(path, ni)
	}
	removed, _ := x.consumeItem(ni, target)
	if removed {
		x.repair(path, target)
		x.size--
	}
	return int(target), lvl, true
}

// PopMin atomically removes and returns the smallest live item id. ok is
// false when the index is empty.
func (x *LeafIndex) PopMin() (int, bool) {
	if x.size == 0 {
		return 0, false
	}
	path := append(x.path[:0], 0)
	return x.popMinFrom(path), true
}

// popMinFrom consumes one capacity unit of the minID item under the last
// node of path (a root-anchored trie path). Items usually carry one unit,
// in which case the item is removed and counts and minIDs repaired along
// the way; a multi-capacity item just loses a unit and stays in place.
func (x *LeafIndex) popMinFrom(path []int32) int {
	ni := path[len(path)-1]
	target := x.nodes[ni].minID
	for depthAt := len(path) - 1; depthAt < x.depth; depthAt++ {
		// A live subtree always contains its own minID: descend into the
		// child carrying it.
		ni = x.childWithMin(ni, target)
		path = append(path, ni)
	}
	removed, _ := x.consumeItem(ni, target)
	if removed {
		x.repair(path, target)
		x.size--
	}
	return int(target)
}

// childWithMin returns the child of ni whose subtree minimum is target.
func (x *LeafIndex) childWithMin(ni, target int32) int32 {
	n := &x.nodes[ni]
	if x.degree > 0 {
		blk := x.kids[n.kids : n.kids+int32(x.degree)]
		for _, ci := range blk {
			if ci != nilIdx && x.nodes[ci].minID == target {
				return ci
			}
		}
	} else {
		for ci := n.kids; ci != nilIdx; ci = x.sibs[ci] {
			if x.nodes[ci].minID == target {
				return ci
			}
		}
	}
	return nilIdx
}

// Walk visits every indexed item (code, id). Order is unspecified.
func (x *LeafIndex) Walk(fn func(code Code, id int)) {
	x.WalkCap(func(code Code, id, _ int) { fn(code, id) })
}

// WalkCap visits every indexed item (code, id, remaining capacity). Order
// is unspecified.
func (x *LeafIndex) WalkCap(fn func(code Code, id, capacity int)) {
	if x.size == 0 {
		return
	}
	prefix := make([]byte, 0, x.depth)
	x.walk(0, prefix, fn)
}

func (x *LeafIndex) walk(ni int32, prefix []byte, fn func(code Code, id, capacity int)) {
	n := x.nodes[ni]
	for si := n.items; si != nilIdx; si = x.items[si].next {
		fn(Code(prefix), int(x.items[si].id), int(x.itemCap(si)))
	}
	if x.degree > 0 {
		if n.kids == nilIdx {
			return
		}
		for d := 0; d < x.degree; d++ {
			if ci := x.kids[n.kids+int32(d)]; ci != nilIdx {
				x.walk(ci, append(prefix, byte(d)), fn)
			}
		}
	} else {
		for ci := n.kids; ci != nilIdx; ci = x.sibs[ci] {
			x.walk(ci, append(prefix, x.digits[ci]), fn)
		}
	}
}

// Candidate is one live item surfaced by the non-destructive enumeration
// queries (NearestK, CollectWithin): everything an assignment policy needs
// to rank candidates and later commit a decision through Consume.
type Candidate struct {
	ID    int  // item id
	Code  Code // the item's leaf code (for the Consume commit)
	Level int  // LCA level with the query code
	Cap   int  // remaining capacity units
}

// NearestK appends to out the (up to) k nearest items to the query code in
// tree distance — ordered by ascending LCA level, smallest id first within
// a level — without removing anything. Policies inspect the candidates and
// commit chosen assignments with Consume. The returned slice is out
// extended in place; each level segment is scanned through a bounded
// selection buffer, so only candidates that make the top k materialise a
// Code string — a huge segment (the whole shard, at the root level) costs
// comparisons, not allocations.
func (x *LeafIndex) NearestK(code Code, k int, out []Candidate) []Candidate {
	return x.enumerate(code, x.depth, k, true, out)
}

// CollectWithin appends to out every item whose LCA with the query code
// sits at level ≤ maxLevel, ordered by ascending level and then id, without
// removing anything.
func (x *LeafIndex) CollectWithin(code Code, maxLevel int, out []Candidate) []Candidate {
	return x.enumerate(code, maxLevel, x.size, false, out)
}

// SmallestK appends to out the (up to) k smallest-id items of the whole
// index, stamped with the given LCA level and carrying their leaf codes —
// the code-addressed analogue of SmallestKRef, for callers (a cluster
// coordinator gathering cross-shard pads) that commit through Consume on
// another process where an arena ref is meaningless. Ties between equal
// ids break by code; engine populations key workers by unique id, where
// the order agrees with SmallestKRef's.
func (x *LeafIndex) SmallestK(k, level int, out []Candidate) []Candidate {
	if x.size == 0 || k <= 0 {
		return out
	}
	return x.collectK(0, nilIdx, x.cbuf[:0], level, k, len(out), out)
}

// enumerate is the shared engine of NearestK and CollectWithin: it descends
// the query's exact branch as deep as it goes, then climbs back towards the
// root, emitting at each step the items that sit under the current ancestor
// but not under the already-emitted child branch — exactly the items whose
// LCA with the query is at that ancestor's level. Level segments come out
// sorted by id, so truncating at k keeps the smallest ids; in bounded mode
// each segment is gathered through a keep-k-smallest buffer instead of a
// collect-then-sort.
func (x *LeafIndex) enumerate(code Code, maxLevel, k int, bounded bool, out []Candidate) []Candidate {
	if x.size == 0 || len(code) != x.depth || k <= 0 {
		return out
	}
	path := x.path[:0]
	ni := int32(0)
	path = append(path, ni)
	j := 0
	for j < x.depth {
		ci := x.child(ni, code[j])
		if ci == nilIdx {
			break
		}
		ni = ci
		path = append(path, ni)
		j++
	}
	base := len(out)
	for i := j; i >= 0; i-- {
		lvl := x.depth - i
		if lvl > maxLevel {
			break
		}
		except := nilIdx
		if i < j {
			except = path[i+1]
		}
		start := len(out)
		buf := append(x.cbuf[:0], code[:i]...)
		if bounded {
			out = x.collectK(path[i], except, buf, lvl, k-(len(out)-base), start, out)
		} else {
			out = x.collect(path[i], except, buf, lvl, out)
			sortCandidates(out[start:])
		}
		if len(out)-base >= k {
			out = out[:base+k]
			break
		}
	}
	return out
}

// collectK walks the subtree under ni — except the except branch — keeping
// in out[start:] only the need smallest items by (id, code), in sorted
// order. Codes are materialised when an item enters the buffer; losers are
// rejected on a comparison against the buffer's current maximum, so a
// segment of m items costs O(m·need) in the worst case and allocates
// nothing for the discarded ones.
func (x *LeafIndex) collectK(ni, except int32, buf []byte, lvl, need, start int, out []Candidate) []Candidate {
	if ni == except || need <= 0 {
		return out
	}
	n := x.nodes[ni]
	for si := n.items; si != nilIdx; si = x.items[si].next {
		out = x.offerK(out, start, need, x.items[si].id, x.itemCap(si), buf, lvl)
	}
	if x.degree > 0 {
		if n.kids == nilIdx {
			return out
		}
		for d := 0; d < x.degree; d++ {
			if ci := x.kids[n.kids+int32(d)]; ci != nilIdx {
				out = x.collectK(ci, except, append(buf, byte(d)), lvl, need, start, out)
			}
		}
	} else {
		for ci := n.kids; ci != nilIdx; ci = x.sibs[ci] {
			out = x.collectK(ci, except, append(buf, x.digits[ci]), lvl, need, start, out)
		}
	}
	return out
}

// offerK inserts one item into the bounded sorted buffer out[start:] if it
// ranks among the need smallest seen so far.
func (x *LeafIndex) offerK(out []Candidate, start, need int, id, capacity int32, buf []byte, lvl int) []Candidate {
	seg := out[start:]
	full := len(seg) >= need
	if full && !beforeCandidate(id, buf, seg[len(seg)-1]) {
		return out
	}
	pos := len(seg)
	for pos > 0 && beforeCandidate(id, buf, seg[pos-1]) {
		pos--
	}
	c := Candidate{ID: int(id), Code: Code(buf), Level: lvl, Cap: int(capacity)}
	if full {
		copy(seg[pos+1:], seg[pos:len(seg)-1])
		seg[pos] = c
		return out
	}
	out = append(out, Candidate{})
	seg = out[start:]
	copy(seg[pos+1:], seg[pos:len(seg)-1])
	seg[pos] = c
	return out
}

// beforeCandidate reports whether (id, buf) orders strictly before c by
// (id, code), comparing the raw digit buffer so no string materialises for
// the comparison.
func beforeCandidate(id int32, buf []byte, c Candidate) bool {
	if int(id) != c.ID {
		return int(id) < c.ID
	}
	n := len(buf)
	if len(c.Code) < n {
		n = len(c.Code)
	}
	for i := 0; i < n; i++ {
		if buf[i] != c.Code[i] {
			return buf[i] < c.Code[i]
		}
	}
	return len(buf) < len(c.Code)
}

// collect appends every item under ni — except the except subtree — as a
// candidate at the given level, extending buf with the digits walked so the
// leaf code can be materialised once per leaf.
func (x *LeafIndex) collect(ni, except int32, buf []byte, lvl int, out []Candidate) []Candidate {
	if ni == except {
		return out
	}
	n := x.nodes[ni]
	if n.items != nilIdx {
		leaf := Code(buf) // one string per candidate leaf
		for si := n.items; si != nilIdx; si = x.items[si].next {
			out = append(out, Candidate{
				ID:    int(x.items[si].id),
				Code:  leaf,
				Level: lvl,
				Cap:   int(x.itemCap(si)),
			})
		}
	}
	if x.degree > 0 {
		if n.kids == nilIdx {
			return out
		}
		for d := 0; d < x.degree; d++ {
			if ci := x.kids[n.kids+int32(d)]; ci != nilIdx {
				out = x.collect(ci, except, append(buf, byte(d)), lvl, out)
			}
		}
	} else {
		for ci := n.kids; ci != nilIdx; ci = x.sibs[ci] {
			out = x.collect(ci, except, append(buf, x.digits[ci]), lvl, out)
		}
	}
	return out
}

// sortCandidates orders one level segment by (id, code).
func sortCandidates(seg []Candidate) {
	sort.Slice(seg, func(a, b int) bool {
		if seg[a].ID != seg[b].ID {
			return seg[a].ID < seg[b].ID
		}
		return seg[a].Code < seg[b].Code
	})
}
