package hst

import (
	"fmt"
	"math"
)

// LeafIndex is a trie over leaf codes supporting O(D) insertion, removal,
// and nearest-leaf queries in tree distance. The HST-Greedy matcher uses it
// to find, for an arriving task, an unassigned worker with the deepest
// common code prefix — i.e. minimal LCA level, i.e. minimal tree distance.
//
// Among equidistant items the index deterministically returns the smallest
// id, which makes it assignment-for-assignment identical to the O(n)
// scanning implementation of Alg. 4 (which also resolves ties towards the
// lowest index). Multiple items may share a leaf code (several workers can
// be obfuscated to the same leaf).
//
// Layout: the index is arena-backed. All trie nodes live in one contiguous
// []flatNode slab and refer to each other by int32 index, so descent walks
// the slab instead of chasing heap pointers. Children are resolved through
// dense per-node blocks of the child arena (one int32 slot per digit,
// available when the tree degree is known and ≤ denseDegreeLimit) or, for
// larger or unknown degrees, through digit-tagged sibling lists threaded
// inside the node slab itself. Leaf items sit in a third slab as
// singly-linked slots. Nodes, child blocks, and item slots freed when a
// subtree empties go on freelists and are reused by later inserts, and the
// root-to-leaf path scratch is owned by the index, so in steady state
// (inserts balancing removals) no operation allocates.
//
// Like its map-based predecessor, LeafIndex is not safe for concurrent use;
// callers serialise access (the sharded engine drives one index per shard
// under that shard's lock, which also makes the shared path scratch safe).
type LeafIndex struct {
	depth  int
	degree int // dense child-block width; 0 = sparse sibling lists
	size   int

	nodes []flatNode // node arena; index 0 is the root
	kids  []int32    // dense child arena: blocks of degree slots, nilIdx = absent
	items []itemSlot // leaf item arena

	freeNode  int32   // head of the freed-node list (linked through flatNode.sib)
	freeItem  int32   // head of the freed-item list (linked through itemSlot.next)
	freeBlock []int32 // freed dense child-block offsets

	path []int32 // reusable root-to-leaf descent scratch
}

// flatNode is one trie position in the arena. 24 bytes; a realistic shard
// of the index fits in L2.
type flatNode struct {
	count int32 // live items in this subtree (≥ 1 for every allocated non-root node)
	minID int32 // smallest live item id in this subtree (noItem32 when none)
	kids  int32 // dense: child-block offset into LeafIndex.kids; sparse: first child node
	sib   int32 // sparse: next sibling node; freed nodes: freelist link
	items int32 // head of this leaf's item-slot list
	digit uint8 // child digit under the parent (unused for the root)
}

type itemSlot struct {
	id   int32
	next int32
}

const (
	nilIdx   = int32(-1)
	noItem32 = int32(math.MaxInt32)

	// denseDegreeLimit bounds the child-block width: degrees above it fall
	// back to sparse sibling lists (a dense block per node would waste
	// arena space on mostly-absent digits).
	denseDegreeLimit = 32
)

// NewLeafIndex returns an empty index for codes of the given depth. The
// tree degree is unknown, so children use the sparse representation; when
// the degree is available, prefer NewLeafIndexDegree.
func NewLeafIndex(depth int) *LeafIndex {
	return NewLeafIndexDegree(depth, 0)
}

// NewLeafIndexDegree returns an empty index for codes of the given depth
// over a tree with the given branching factor. Degrees in [1,
// denseDegreeLimit] select dense per-node child blocks with O(1) digit
// lookup; 0 (unknown) or larger degrees select sparse sibling lists.
func NewLeafIndexDegree(depth, degree int) *LeafIndex {
	if degree < 0 || degree > denseDegreeLimit {
		degree = 0
	}
	x := &LeafIndex{
		depth:  depth,
		degree: degree,
		nodes:  make([]flatNode, 1, 64),
		path:   make([]int32, 0, depth+1),

		freeNode: nilIdx,
		freeItem: nilIdx,
	}
	x.nodes[0] = flatNode{minID: noItem32, kids: nilIdx, sib: nilIdx, items: nilIdx}
	return x
}

// Len returns the number of items currently indexed.
func (x *LeafIndex) Len() int { return x.size }

// Insert adds an item id at the given leaf code. Ids must be non-negative
// and fit in an int32. With a dense child layout every digit must be below
// the declared degree.
func (x *LeafIndex) Insert(code Code, id int) error {
	if len(code) != x.depth {
		return fmt.Errorf("hst: code length %d, index depth %d", len(code), x.depth)
	}
	if id < 0 {
		return fmt.Errorf("hst: item id must be non-negative, got %d", id)
	}
	if id > math.MaxInt32 {
		return fmt.Errorf("hst: item id %d exceeds the index's int32 range", id)
	}
	if x.degree > 0 {
		// Validate before mutating anything: a dense block is indexed by
		// digit, so an out-of-range digit must not corrupt counts.
		for j := 0; j < x.depth; j++ {
			if int(code[j]) >= x.degree {
				return fmt.Errorf("hst: digit %d at position %d exceeds index degree %d", code[j], j, x.degree)
			}
		}
	}
	id32 := int32(id)
	ni := int32(0)
	x.bump(ni, id32)
	for j := 0; j < x.depth; j++ {
		ci := x.child(ni, code[j])
		if ci == nilIdx {
			ci = x.addChild(ni, code[j])
		}
		x.bump(ci, id32)
		ni = ci
	}
	si := x.allocItem(id32)
	x.items[si].next = x.nodes[ni].items
	x.nodes[ni].items = si
	x.size++
	return nil
}

// bump increments a node's count and folds id into its subtree minimum.
func (x *LeafIndex) bump(ni, id int32) {
	n := &x.nodes[ni]
	n.count++
	if id < n.minID {
		n.minID = id
	}
}

// child resolves the child of node ni holding the given digit, or nilIdx.
func (x *LeafIndex) child(ni int32, digit byte) int32 {
	n := &x.nodes[ni]
	if x.degree > 0 {
		if n.kids == nilIdx {
			return nilIdx
		}
		if int(digit) >= x.degree {
			return nilIdx
		}
		return x.kids[n.kids+int32(digit)]
	}
	for ci := n.kids; ci != nilIdx; ci = x.nodes[ci].sib {
		if x.nodes[ci].digit == digit {
			return ci
		}
	}
	return nilIdx
}

// addChild allocates a child of ni for the given digit and links it in.
func (x *LeafIndex) addChild(ni int32, digit byte) int32 {
	ci := x.allocNode(digit)
	if x.degree > 0 {
		blk := x.nodes[ni].kids
		if blk == nilIdx {
			blk = x.allocBlock()
			x.nodes[ni].kids = blk
		}
		x.kids[blk+int32(digit)] = ci
	} else {
		x.nodes[ci].sib = x.nodes[ni].kids
		x.nodes[ni].kids = ci
	}
	return ci
}

// allocNode takes a node off the freelist or grows the arena. Callers must
// not hold *flatNode pointers across the call: growth may move the slab.
func (x *LeafIndex) allocNode(digit byte) int32 {
	var ni int32
	if x.freeNode != nilIdx {
		ni = x.freeNode
		x.freeNode = x.nodes[ni].sib
	} else {
		ni = int32(len(x.nodes))
		x.nodes = append(x.nodes, flatNode{})
	}
	x.nodes[ni] = flatNode{minID: noItem32, kids: nilIdx, sib: nilIdx, items: nilIdx, digit: digit}
	return ni
}

// allocBlock takes a dense child block off the freelist or grows the child
// arena. Freed blocks are all-nilIdx by the count invariant (a node is
// freed only after all of its children were), so reuse needs no clearing.
func (x *LeafIndex) allocBlock() int32 {
	if n := len(x.freeBlock); n > 0 {
		off := x.freeBlock[n-1]
		x.freeBlock = x.freeBlock[:n-1]
		return off
	}
	off := int32(len(x.kids))
	for i := 0; i < x.degree; i++ {
		x.kids = append(x.kids, nilIdx)
	}
	return off
}

func (x *LeafIndex) allocItem(id int32) int32 {
	var si int32
	if x.freeItem != nilIdx {
		si = x.freeItem
		x.freeItem = x.items[si].next
	} else {
		si = int32(len(x.items))
		x.items = append(x.items, itemSlot{})
	}
	x.items[si] = itemSlot{id: id, next: nilIdx}
	return si
}

// freeNodeAt returns an empty node (count 0, no items, no live children) to
// the freelist, releasing its dense child block if it ever grew one.
func (x *LeafIndex) freeNodeAt(ni int32) {
	n := &x.nodes[ni]
	if x.degree > 0 && n.kids != nilIdx {
		x.freeBlock = append(x.freeBlock, n.kids)
	}
	n.kids = nilIdx
	n.items = nilIdx
	n.sib = x.freeNode
	x.freeNode = ni
}

// unlinkChild detaches child ci from parent pi.
func (x *LeafIndex) unlinkChild(pi, ci int32) {
	if x.degree > 0 {
		x.kids[x.nodes[pi].kids+int32(x.nodes[ci].digit)] = nilIdx
		return
	}
	prev := nilIdx
	for cur := x.nodes[pi].kids; cur != nilIdx; cur = x.nodes[cur].sib {
		if cur == ci {
			if prev == nilIdx {
				x.nodes[pi].kids = x.nodes[ci].sib
			} else {
				x.nodes[prev].sib = x.nodes[ci].sib
			}
			return
		}
		prev = cur
	}
}

// Remove deletes one occurrence of id at the given leaf code. It reports
// whether the item was present.
func (x *LeafIndex) Remove(code Code, id int) bool {
	if len(code) != x.depth || id < 0 || id > math.MaxInt32 {
		return false
	}
	// Locate the leaf first so failed removals do not corrupt counts.
	path := x.path[:0]
	ni := int32(0)
	path = append(path, ni)
	for j := 0; j < x.depth; j++ {
		ni = x.child(ni, code[j])
		if ni == nilIdx {
			return false
		}
		path = append(path, ni)
	}
	if !x.removeItem(ni, int32(id)) {
		return false
	}
	x.repair(path, int32(id))
	x.size--
	return true
}

// removeItem unlinks one occurrence of id from the leaf's item list.
func (x *LeafIndex) removeItem(ni, id int32) bool {
	prev := nilIdx
	for si := x.nodes[ni].items; si != nilIdx; si = x.items[si].next {
		if x.items[si].id == id {
			if prev == nilIdx {
				x.nodes[ni].items = x.items[si].next
			} else {
				x.items[prev].next = x.items[si].next
			}
			x.items[si].next = x.freeItem
			x.freeItem = si
			return true
		}
		prev = si
	}
	return false
}

// repair walks a root-anchored path bottom-up after the removal of id:
// counts drop, emptied nodes are unlinked and freed, and a node's subtree
// minimum is recomputed only when the removed id was that minimum — the
// only case in which it can have changed.
func (x *LeafIndex) repair(path []int32, id int32) {
	for i := len(path) - 1; i >= 1; i-- {
		ni := path[i]
		n := &x.nodes[ni]
		n.count--
		if n.count == 0 {
			x.unlinkChild(path[i-1], ni)
			x.freeNodeAt(ni)
		} else if n.minID == id {
			n.minID = x.recomputeMin(ni)
		}
	}
	r := &x.nodes[0]
	r.count--
	if r.minID == id {
		r.minID = x.recomputeMin(0)
	}
}

// recomputeMin scans a node's own items and its live children for the
// smallest id (noItem32 when the subtree is empty).
func (x *LeafIndex) recomputeMin(ni int32) int32 {
	n := &x.nodes[ni]
	min := noItem32
	for si := n.items; si != nilIdx; si = x.items[si].next {
		if x.items[si].id < min {
			min = x.items[si].id
		}
	}
	if x.degree > 0 {
		if n.kids != nilIdx {
			blk := x.kids[n.kids : n.kids+int32(x.degree)]
			for _, ci := range blk {
				if ci != nilIdx && x.nodes[ci].minID < min {
					min = x.nodes[ci].minID
				}
			}
		}
	} else {
		for ci := n.kids; ci != nilIdx; ci = x.nodes[ci].sib {
			if x.nodes[ci].minID < min {
				min = x.nodes[ci].minID
			}
		}
	}
	return min
}

// Nearest returns the smallest-id item whose code has the deepest common
// prefix with the query code, along with the resulting LCA level (0 when
// the item sits on the query leaf itself). ok is false when the index is
// empty or the code is malformed.
func (x *LeafIndex) Nearest(code Code) (id, lcaLevel int, ok bool) {
	if x.size == 0 || len(code) != x.depth {
		return 0, 0, false
	}
	ni := int32(0)
	j := 0
	for j < x.depth {
		ci := x.child(ni, code[j])
		if ci == nilIdx {
			break
		}
		ni = ci
		j++
	}
	// Every live item under ni shares exactly the first j digits with the
	// query (the exact branch below ni is exhausted), so all of them are at
	// LCA level depth−j — the minimum possible — and minID picks the
	// deterministic representative.
	return int(x.nodes[ni].minID), x.depth - j, true
}

// MinID returns the smallest live item id. ok is false when the index is
// empty. The assignment engine uses it to break cross-shard ties towards
// the lowest id, matching the scanning implementation of Alg. 4.
func (x *LeafIndex) MinID() (int, bool) {
	if x.size == 0 {
		return 0, false
	}
	return int(x.nodes[0].minID), true
}

// CountPrefix returns the number of live items whose code starts with the
// given prefix — the occupancy of the complete-tree node the prefix
// identifies (level D−len(prefix)). An empty prefix counts everything.
func (x *LeafIndex) CountPrefix(prefix Code) int {
	if len(prefix) > x.depth {
		return 0
	}
	ni := int32(0)
	for j := 0; j < len(prefix); j++ {
		ni = x.child(ni, prefix[j])
		if ni == nilIdx {
			return 0
		}
	}
	return int(x.nodes[ni].count)
}

// PopNearest atomically finds and removes the item Nearest would return:
// the smallest-id item with the deepest common code prefix with the query.
// Unlike Nearest+Remove it needs no external code table and traverses the
// trie once down and once up.
func (x *LeafIndex) PopNearest(code Code) (id, lcaLevel int, ok bool) {
	return x.PopNearestWithin(code, x.depth)
}

// PopNearestWithin is PopNearest restricted to candidates whose LCA with
// the query sits at level ≤ maxLevel: when even the nearest item is farther,
// nothing is removed and ok is false (lcaLevel still reports the level the
// nearest item would have had). The sharded engine uses it to detect when a
// query must fall back to a cross-shard search.
func (x *LeafIndex) PopNearestWithin(code Code, maxLevel int) (id, lcaLevel int, ok bool) {
	if x.size == 0 || len(code) != x.depth {
		return 0, 0, false
	}
	path := x.path[:0]
	ni := int32(0)
	path = append(path, ni)
	j := 0
	for j < x.depth {
		ci := x.child(ni, code[j])
		if ci == nilIdx {
			break
		}
		ni = ci
		path = append(path, ni)
		j++
	}
	lvl := x.depth - j
	if lvl > maxLevel {
		return 0, lvl, false
	}
	return x.popMinFrom(path), lvl, true
}

// PopMin atomically removes and returns the smallest live item id. ok is
// false when the index is empty.
func (x *LeafIndex) PopMin() (int, bool) {
	if x.size == 0 {
		return 0, false
	}
	path := append(x.path[:0], 0)
	return x.popMinFrom(path), true
}

// popMinFrom removes the minID item under the last node of path (a
// root-anchored trie path) and repairs counts and minIDs along the way.
func (x *LeafIndex) popMinFrom(path []int32) int {
	ni := path[len(path)-1]
	target := x.nodes[ni].minID
	for depthAt := len(path) - 1; depthAt < x.depth; depthAt++ {
		// A live subtree always contains its own minID: descend into the
		// child carrying it.
		ni = x.childWithMin(ni, target)
		path = append(path, ni)
	}
	x.removeItem(ni, target)
	x.repair(path, target)
	x.size--
	return int(target)
}

// childWithMin returns the child of ni whose subtree minimum is target.
func (x *LeafIndex) childWithMin(ni, target int32) int32 {
	n := &x.nodes[ni]
	if x.degree > 0 {
		blk := x.kids[n.kids : n.kids+int32(x.degree)]
		for _, ci := range blk {
			if ci != nilIdx && x.nodes[ci].minID == target {
				return ci
			}
		}
	} else {
		for ci := n.kids; ci != nilIdx; ci = x.nodes[ci].sib {
			if x.nodes[ci].minID == target {
				return ci
			}
		}
	}
	return nilIdx
}

// Walk visits every indexed item (code, id). Order is unspecified.
func (x *LeafIndex) Walk(fn func(code Code, id int)) {
	if x.size == 0 {
		return
	}
	prefix := make([]byte, 0, x.depth)
	x.walk(0, prefix, fn)
}

func (x *LeafIndex) walk(ni int32, prefix []byte, fn func(code Code, id int)) {
	n := x.nodes[ni]
	for si := n.items; si != nilIdx; si = x.items[si].next {
		fn(Code(prefix), int(x.items[si].id))
	}
	if x.degree > 0 {
		if n.kids == nilIdx {
			return
		}
		for d := 0; d < x.degree; d++ {
			if ci := x.kids[n.kids+int32(d)]; ci != nilIdx {
				x.walk(ci, append(prefix, byte(d)), fn)
			}
		}
	} else {
		for ci := n.kids; ci != nilIdx; ci = x.nodes[ci].sib {
			x.walk(ci, append(prefix, x.nodes[ci].digit), fn)
		}
	}
}
