package hst

import (
	"fmt"
	"math"
)

// LeafIndex is a trie over leaf codes supporting O(D) insertion, removal,
// and nearest-leaf queries in tree distance. The HST-Greedy matcher uses it
// to find, for an arriving task, an unassigned worker with the deepest
// common code prefix — i.e. minimal LCA level, i.e. minimal tree distance.
//
// Among equidistant items the index deterministically returns the smallest
// id, which makes it assignment-for-assignment identical to the O(n)
// scanning implementation of Alg. 4 (which also resolves ties towards the
// lowest index). Multiple items may share a leaf code (several workers can
// be obfuscated to the same leaf).
type LeafIndex struct {
	depth int
	size  int
	root  *trieNode
}

type trieNode struct {
	children map[byte]*trieNode
	count    int   // live items in this subtree
	minID    int   // smallest live item id in this subtree (maxInt when none)
	items    []int // ids, leaf nodes only
}

const noItem = math.MaxInt

// NewLeafIndex returns an empty index for codes of the given depth.
func NewLeafIndex(depth int) *LeafIndex {
	return &LeafIndex{depth: depth, root: &trieNode{minID: noItem}}
}

// Len returns the number of items currently indexed.
func (x *LeafIndex) Len() int { return x.size }

// Insert adds an item id at the given leaf code. Ids must be non-negative.
func (x *LeafIndex) Insert(code Code, id int) error {
	if len(code) != x.depth {
		return fmt.Errorf("hst: code length %d, index depth %d", len(code), x.depth)
	}
	if id < 0 {
		return fmt.Errorf("hst: item id must be non-negative, got %d", id)
	}
	n := x.root
	n.count++
	if id < n.minID {
		n.minID = id
	}
	for j := 0; j < x.depth; j++ {
		if n.children == nil {
			n.children = make(map[byte]*trieNode)
		}
		ch := n.children[code[j]]
		if ch == nil {
			ch = &trieNode{minID: noItem}
			n.children[code[j]] = ch
		}
		ch.count++
		if id < ch.minID {
			ch.minID = id
		}
		n = ch
	}
	n.items = append(n.items, id)
	x.size++
	return nil
}

// Remove deletes one occurrence of id at the given leaf code. It reports
// whether the item was present.
func (x *LeafIndex) Remove(code Code, id int) bool {
	if len(code) != x.depth {
		return false
	}
	// Locate the leaf first so failed removals do not corrupt counts.
	path := make([]*trieNode, 0, x.depth+1)
	n := x.root
	path = append(path, n)
	for j := 0; j < x.depth; j++ {
		if n.children == nil {
			return false
		}
		n = n.children[code[j]]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	found := -1
	for i, item := range n.items {
		if item == id {
			found = i
			break
		}
	}
	if found < 0 {
		return false
	}
	last := len(n.items) - 1
	n.items[found] = n.items[last]
	n.items = n.items[:last]
	// Decrement counts and rebuild minID bottom-up along the path.
	for i := len(path) - 1; i >= 0; i-- {
		p := path[i]
		p.count--
		p.minID = p.recomputeMin()
	}
	x.size--
	return true
}

func (n *trieNode) recomputeMin() int {
	min := noItem
	for _, id := range n.items {
		if id < min {
			min = id
		}
	}
	for _, ch := range n.children {
		if ch.count > 0 && ch.minID < min {
			min = ch.minID
		}
	}
	return min
}

// Nearest returns the smallest-id item whose code has the deepest common
// prefix with the query code, along with the resulting LCA level (0 when
// the item sits on the query leaf itself). ok is false when the index is
// empty or the code is malformed.
func (x *LeafIndex) Nearest(code Code) (id, lcaLevel int, ok bool) {
	if x.size == 0 || len(code) != x.depth {
		return 0, 0, false
	}
	n := x.root
	j := 0
	for j < x.depth {
		ch := n.children[code[j]]
		if ch == nil || ch.count == 0 {
			break
		}
		n = ch
		j++
	}
	// Every live item under n shares exactly the first j digits with the
	// query (the exact branch below n is exhausted), so all of them are at
	// LCA level depth−j — the minimum possible — and minID picks the
	// deterministic representative.
	return n.minID, x.depth - j, true
}

// MinID returns the smallest live item id. ok is false when the index is
// empty. The assignment engine uses it to break cross-shard ties towards
// the lowest id, matching the scanning implementation of Alg. 4.
func (x *LeafIndex) MinID() (int, bool) {
	if x.size == 0 {
		return 0, false
	}
	return x.root.minID, true
}

// CountPrefix returns the number of live items whose code starts with the
// given prefix — the occupancy of the complete-tree node the prefix
// identifies (level D−len(prefix)). An empty prefix counts everything.
func (x *LeafIndex) CountPrefix(prefix Code) int {
	if len(prefix) > x.depth {
		return 0
	}
	n := x.root
	for j := 0; j < len(prefix); j++ {
		if n.children == nil {
			return 0
		}
		n = n.children[prefix[j]]
		if n == nil {
			return 0
		}
	}
	return n.count
}

// PopNearest atomically finds and removes the item Nearest would return:
// the smallest-id item with the deepest common code prefix with the query.
// Unlike Nearest+Remove it needs no external code table and traverses the
// trie once down and once up.
func (x *LeafIndex) PopNearest(code Code) (id, lcaLevel int, ok bool) {
	return x.PopNearestWithin(code, x.depth)
}

// PopNearestWithin is PopNearest restricted to candidates whose LCA with
// the query sits at level ≤ maxLevel: when even the nearest item is farther,
// nothing is removed and ok is false (lcaLevel still reports the level the
// nearest item would have had). The sharded engine uses it to detect when a
// query must fall back to a cross-shard search.
func (x *LeafIndex) PopNearestWithin(code Code, maxLevel int) (id, lcaLevel int, ok bool) {
	if x.size == 0 || len(code) != x.depth {
		return 0, 0, false
	}
	path := make([]*trieNode, 0, x.depth+1)
	n := x.root
	path = append(path, n)
	j := 0
	for j < x.depth {
		ch := n.children[code[j]]
		if ch == nil || ch.count == 0 {
			break
		}
		n = ch
		path = append(path, n)
		j++
	}
	lvl := x.depth - j
	if lvl > maxLevel {
		return 0, lvl, false
	}
	return x.popMinFrom(path), lvl, true
}

// PopMin atomically removes and returns the smallest live item id. ok is
// false when the index is empty.
func (x *LeafIndex) PopMin() (int, bool) {
	if x.size == 0 {
		return 0, false
	}
	path := make([]*trieNode, 0, x.depth+1)
	path = append(path, x.root)
	return x.popMinFrom(path), true
}

// popMinFrom removes the minID item under the last node of path (a
// root-anchored trie path) and repairs counts and minIDs along the way.
func (x *LeafIndex) popMinFrom(path []*trieNode) int {
	n := path[len(path)-1]
	target := n.minID
	for depthAt := len(path) - 1; depthAt < x.depth; depthAt++ {
		var next *trieNode
		for _, ch := range n.children {
			if ch.count > 0 && ch.minID == target {
				next = ch
				break
			}
		}
		n = next // a live subtree always contains its own minID
		path = append(path, n)
	}
	for i, item := range n.items {
		if item == target {
			last := len(n.items) - 1
			n.items[i] = n.items[last]
			n.items = n.items[:last]
			break
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		p := path[i]
		p.count--
		p.minID = p.recomputeMin()
	}
	x.size--
	return target
}

// Walk visits every indexed item (code, id). Order is unspecified.
func (x *LeafIndex) Walk(fn func(code Code, id int)) {
	var rec func(n *trieNode, prefix []byte)
	rec = func(n *trieNode, prefix []byte) {
		if n.count == 0 {
			return
		}
		for _, id := range n.items {
			fn(Code(prefix), id)
		}
		for digit, ch := range n.children {
			rec(ch, append(prefix, digit))
		}
	}
	rec(x.root, make([]byte, 0, x.depth))
}
