package hst

// CandidateRef is a Candidate addressed by arena position instead of leaf
// code: no string ever materialises, which keeps high-rate candidate
// mining allocation-free. A ref is only meaningful against the index that
// produced it, and only until that index is next mutated — the engine
// mines and commits a batch window under one lock hold, which is exactly
// that envelope.
type CandidateRef struct {
	ID    int32 // item id
	Node  int32 // leaf node in the index arena (for the ConsumeRef commit)
	Level int32 // LCA level with the query code
	Cap   int32 // remaining capacity units
}

// NearestKRef is NearestK over refs: it appends to out the (up to) k
// nearest items to the query code in tree distance — ascending LCA level,
// smallest id first within a level — without removing anything and without
// materialising a single code string. Ties between equal ids (the same id
// inserted at several leaves) break by arena position, which is
// deterministic for a frozen index but not necessarily the code order
// NearestK uses; engine populations key workers by unique id, where the
// two orders agree.
func (x *LeafIndex) NearestKRef(code Code, k int, out []CandidateRef) []CandidateRef {
	if x.size == 0 || len(code) != x.depth || k <= 0 {
		return out
	}
	path := x.path[:0]
	ni := int32(0)
	path = append(path, ni)
	j := 0
	for j < x.depth {
		ci := x.child(ni, code[j])
		if ci == nilIdx {
			break
		}
		ni = ci
		path = append(path, ni)
		j++
	}
	base := len(out)
	for i := j; i >= 0; i-- {
		lvl := x.depth - i
		except := nilIdx
		if i < j {
			except = path[i+1]
		}
		out = x.collectKRef(path[i], except, lvl, k-(len(out)-base), len(out), out)
		if len(out)-base >= k {
			out = out[:base+k]
			break
		}
	}
	return out
}

// SmallestKRef appends to out the (up to) k smallest-id items of the whole
// index, stamped with the given LCA level (ties between equal ids break by
// arena position). The engine's batch policy uses it to pad a task's
// candidate pool from foreign shards, where every worker sits at the
// maximal level and only the id order matters.
func (x *LeafIndex) SmallestKRef(k, level int, out []CandidateRef) []CandidateRef {
	if x.size == 0 || k <= 0 {
		return out
	}
	return x.collectKRef(0, nilIdx, level, k, len(out), out)
}

// ConsumeRef is Consume through a CandidateRef: it takes one capacity unit
// from the item id at the ref's leaf node, removing the item when its last
// unit goes, and reports whether the item was present. The ref must come
// from this index with no intervening mutation (mutations may move or free
// arena nodes); a stale or foreign ref returns false or lands on whatever
// leaf now occupies the slot, so callers own that exclusion — the engine
// holds every shard lock from mine to commit.
func (x *LeafIndex) ConsumeRef(ref CandidateRef) bool {
	ni := ref.Node
	if ni < 0 || int(ni) >= len(x.nodes) || ref.ID < 0 {
		return false
	}
	removed, ok := x.consumeItem(ni, ref.ID)
	if !ok {
		return false
	}
	if removed {
		// Rebuild the root-anchored path through the parent links, then
		// repair counts and minima exactly as a code-addressed removal.
		path := x.path[:0]
		for p := ni; p != nilIdx; p = x.nodes[p].parent {
			path = append(path, p)
		}
		for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
			path[a], path[b] = path[b], path[a]
		}
		x.repair(path, ref.ID)
		x.size--
	}
	return true
}

// RefUnits probes a previously mined ref without consuming anything: it
// returns the capacity units the ref's item currently has at the ref's
// node, ok false when the item is no longer there (consumed away, or the
// node emptied and was freed). The pipelined batch policy uses it to
// revalidate a window mined speculatively before the previous window's
// commits: with the index's InsertGen unchanged since mining, a ref that
// still answers here is exactly the item that was mined — intervening
// removals can consume refs but never redirect them.
func (x *LeafIndex) RefUnits(ref CandidateRef) (units int, ok bool) {
	ni := ref.Node
	if ni < 0 || int(ni) >= len(x.nodes) || ref.ID < 0 {
		return 0, false
	}
	for si := x.nodes[ni].items; si != nilIdx; si = x.items[si].next {
		if x.items[si].id == ref.ID {
			return int(x.itemCap(si)), true
		}
	}
	return 0, false
}

// collectKRef walks the subtree under ni — except the except branch —
// keeping in out[start:] only the need smallest items by (id, node), in
// sorted order. The ref analogue of collectK, with one structural upgrade:
// the per-node subtree minima turn the walk into a branch-and-bound
// search. Children are visited in ascending (minID, index) order and a
// subtree is entered only while its minimum can still beat the buffer's
// current worst id, so the buffer fills with the true smallest ids first
// and then prunes the remaining siblings wholesale — a root-level segment
// over a shard of m items costs O(k·D·degree) comparisons, not O(m).
// The prune is on strictly-greater ids only (an equal minID may still win
// its (id, node) tie-break), so the selection is exactly the unpruned
// walk's.
func (x *LeafIndex) collectKRef(ni, except int32, lvl, need, start int, out []CandidateRef) []CandidateRef {
	if ni == except || need <= 0 {
		return out
	}
	seg := out[start:]
	if len(seg) >= need && x.nodes[ni].minID > seg[len(seg)-1].ID {
		return out
	}
	if int(x.nodes[ni].count) <= need-len(seg) {
		// The whole subtree fits the remaining buffer space: every item
		// enters, so ordering the descent cannot prune anything.
		return x.collectAllRef(ni, except, lvl, need, start, out)
	}
	n := x.nodes[ni]
	for si := n.items; si != nilIdx; si = x.items[si].next {
		out = offerKRef(out, start, need, x.items[si].id, ni, x.itemCap(si), lvl)
	}
	// Gather the live children once into stack buffers sorted by
	// (minID, index); denseDegreeLimit bounds the dense fan-out, and the
	// sparse fallback reuses the same buffers chunk by chunk.
	var cbuf, mbuf [denseDegreeLimit]int32
	if x.degree > 0 {
		if n.kids == nilIdx {
			return out
		}
		m := 0
		blk := x.kids[n.kids : n.kids+int32(x.degree)]
		for _, ci := range blk {
			if ci != nilIdx && ci != except {
				cbuf[m], mbuf[m] = ci, x.nodes[ci].minID
				m++
			}
		}
		sortKidsByMin(&cbuf, &mbuf, m)
		for i := 0; i < m; i++ {
			if seg := out[start:]; len(seg) >= need && mbuf[i] > seg[len(seg)-1].ID {
				break // every unvisited sibling's minimum is ≥ mbuf[i]
			}
			out = x.collectKRef(cbuf[i], except, lvl, need, start, out)
		}
		return out
	}
	// Sparse sibling lists have no degree bound: process the children in
	// chunks, each chunk sorted and bound-checked like a dense block. A
	// chunk boundary only weakens the visit order, never the selection —
	// the offer buffer keeps the exact k smallest whatever order items
	// arrive in.
	for ci := n.kids; ci != nilIdx; {
		m := 0
		for ; ci != nilIdx && m < denseDegreeLimit; ci = x.sibs[ci] {
			if ci != except {
				cbuf[m], mbuf[m] = ci, x.nodes[ci].minID
				m++
			}
		}
		sortKidsByMin(&cbuf, &mbuf, m)
		for i := 0; i < m; i++ {
			if seg := out[start:]; len(seg) >= need && mbuf[i] > seg[len(seg)-1].ID {
				break
			}
			out = x.collectKRef(cbuf[i], except, lvl, need, start, out)
		}
	}
	return out
}

// sortKidsByMin insertion-sorts the first m gathered children by
// (minID, node index). m is at most denseDegreeLimit and typically tiny.
func sortKidsByMin(cbuf, mbuf *[denseDegreeLimit]int32, m int) {
	for i := 1; i < m; i++ {
		ci, mi := cbuf[i], mbuf[i]
		j := i
		for j > 0 && (mbuf[j-1] > mi || (mbuf[j-1] == mi && cbuf[j-1] > ci)) {
			cbuf[j], mbuf[j] = cbuf[j-1], mbuf[j-1]
			j--
		}
		cbuf[j], mbuf[j] = ci, mi
	}
}

// collectAllRef is collectKRef's unordered tail: the caller established
// that the subtree's whole population fits the buffer, so it walks in
// plain digit order with no per-child bookkeeping.
func (x *LeafIndex) collectAllRef(ni, except int32, lvl, need, start int, out []CandidateRef) []CandidateRef {
	if ni == except {
		return out
	}
	n := x.nodes[ni]
	for si := n.items; si != nilIdx; si = x.items[si].next {
		out = offerKRef(out, start, need, x.items[si].id, ni, x.itemCap(si), lvl)
	}
	if x.degree > 0 {
		if n.kids == nilIdx {
			return out
		}
		for _, ci := range x.kids[n.kids : n.kids+int32(x.degree)] {
			if ci != nilIdx {
				out = x.collectAllRef(ci, except, lvl, need, start, out)
			}
		}
	} else {
		for ci := n.kids; ci != nilIdx; ci = x.sibs[ci] {
			out = x.collectAllRef(ci, except, lvl, need, start, out)
		}
	}
	return out
}

// offerKRef inserts one item into the bounded sorted buffer out[start:] if
// it ranks among the need smallest seen so far.
func offerKRef(out []CandidateRef, start, need int, id, ni, capacity int32, lvl int) []CandidateRef {
	seg := out[start:]
	full := len(seg) >= need
	if full && !beforeRef(id, ni, seg[len(seg)-1]) {
		return out
	}
	pos := len(seg)
	for pos > 0 && beforeRef(id, ni, seg[pos-1]) {
		pos--
	}
	c := CandidateRef{ID: id, Node: ni, Level: int32(lvl), Cap: capacity}
	if full {
		copy(seg[pos+1:], seg[pos:len(seg)-1])
		seg[pos] = c
		return out
	}
	out = append(out, CandidateRef{})
	seg = out[start:]
	copy(seg[pos+1:], seg[pos:len(seg)-1])
	seg[pos] = c
	return out
}

// beforeRef reports whether (id, ni) orders strictly before c by
// (id, node).
func beforeRef(id, ni int32, c CandidateRef) bool {
	if id != c.ID {
		return id < c.ID
	}
	return ni < c.Node
}
