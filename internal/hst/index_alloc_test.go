package hst

import (
	"testing"

	"github.com/pombm/pombm/internal/rng"
)

// allocFixture builds a warmed flat index plus query codes for the
// steady-state allocation and speed tests.
func allocFixture(tb testing.TB, depth, degree, n int) (*LeafIndex, []Code) {
	tb.Helper()
	src := rng.New(31)
	x := NewLeafIndexDegree(depth, degree)
	codes := make([]Code, n)
	for i := range codes {
		b := make([]byte, depth)
		for j := range b {
			b[j] = byte(src.Intn(degree))
		}
		codes[i] = Code(b)
		if err := x.Insert(codes[i], i); err != nil {
			tb.Fatal(err)
		}
	}
	return x, codes
}

// TestPopNearestZeroAllocSteadyState pins the zero-allocation contract of
// the serving hot path: once the arena has reached its high-water mark,
// PopNearest and the reinsert that follows (a worker assigned, a worker
// released) must not allocate at all.
func TestPopNearestZeroAllocSteadyState(t *testing.T) {
	x, codes := allocFixture(t, 8, 6, 512)
	src := rng.New(77)
	// Warm the freelists and scratch through one full churn cycle.
	for i := 0; i < 2048; i++ {
		q := codes[src.Intn(len(codes))]
		if id, _, ok := x.PopNearest(q); ok {
			if err := x.Insert(codes[id], id); err != nil {
				t.Fatal(err)
			}
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		q := codes[i%len(codes)]
		i++
		id, _, ok := x.PopNearest(q)
		if !ok {
			t.Fatal("pop failed on populated index")
		}
		if err := x.Insert(codes[id], id); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PopNearest+Insert steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestRemoveZeroAllocSteadyState(t *testing.T) {
	x, codes := allocFixture(t, 8, 6, 512)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		id := i % len(codes)
		i++
		if !x.Remove(codes[id], id) {
			t.Fatal("remove failed")
		}
		if err := x.Insert(codes[id], id); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Remove+Insert steady state allocates %.1f/op, want 0", allocs)
	}
}

// Benchmarks: the flat arena trie against the retained map-trie reference,
// on the PopNearest+Insert churn that dominates the serving path.

func benchChurn(b *testing.B, pop func(Code) (int, int, bool), insert func(Code, int) error, codes []Code) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := codes[i%len(codes)]
		id, _, ok := pop(q)
		if !ok {
			b.Fatal("pop failed")
		}
		if err := insert(codes[id], id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeafIndexPopNearestFlat(b *testing.B) {
	x, codes := allocFixture(b, 10, 12, 16384)
	benchChurn(b, x.PopNearest, x.Insert, codes)
}

func BenchmarkLeafIndexPopNearestMap(b *testing.B) {
	src := rng.New(31)
	const depth, degree, n = 10, 12, 16384
	x := newMapLeafIndex(depth)
	codes := make([]Code, n)
	for i := range codes {
		bs := make([]byte, depth)
		for j := range bs {
			bs[j] = byte(src.Intn(degree))
		}
		codes[i] = Code(bs)
		if err := x.Insert(codes[i], i); err != nil {
			b.Fatal(err)
		}
	}
	benchChurn(b, x.PopNearest, x.Insert, codes)
}

func BenchmarkLeafIndexInsertRemoveFlat(b *testing.B) {
	x, codes := allocFixture(b, 10, 12, 16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % len(codes)
		if !x.Remove(codes[id], id) {
			b.Fatal("remove failed")
		}
		if err := x.Insert(codes[id], id); err != nil {
			b.Fatal(err)
		}
	}
}
