package hst

import (
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// Build constructs an HST over the predefined points (Alg. 1) using a
// random permutation and β drawn uniformly from [1/2, 1].
//
// The construction carves each level-(i+1) cluster into level-i children by
// intersecting it with balls of radius β·2^i around the points in
// permutation priority order; this is the classic FRT decomposition, which
// guarantees non-contraction (tree distance ≥ metric distance) and
// O(log N) expected distortion.
//
// When the minimum pairwise distance is ≤ 1 the metric is scaled up so
// that level-0 balls isolate single points (the paper implicitly assumes
// unit minimum distance); the scale is recorded in Tree.Scale.
func Build(points []geo.Point, src *rng.Source) (*Tree, error) {
	perm := make([]int, len(points))
	for i := range perm {
		perm[i] = i
	}
	rng.PermInPlace(src.Derive("hst-perm"), perm)
	beta := src.Derive("hst-beta").Uniform(0.5, 1.0)
	return BuildWithParams(points, beta, perm)
}

// BuildWithParams constructs an HST with an explicit radius factor and
// pivot permutation. It is used by tests that reproduce the paper's
// worked examples and by deterministic deployments.
func BuildWithParams(points []geo.Point, beta float64, perm []int) (*Tree, error) {
	for i, p := range points {
		if !p.IsFinite() {
			return nil, fmt.Errorf("hst: point %d is not finite", i)
		}
	}
	return BuildMetricWithParams(points, func(a, b int) float64 {
		return points[a].Dist(points[b])
	}, beta, perm)
}

// BuildMetric constructs an HST over an arbitrary finite metric: n points
// whose pairwise distances come from dist (which must be a metric —
// symmetric, zero exactly on the diagonal, triangle inequality). Alg. 1
// never uses coordinates, only distances, so it embeds road networks or any
// other metric just as well as the plane; the planar Build is a wrapper
// over this entry point. Leaf positions (Tree.Point) are synthesised on a
// line and only used for reporting.
func BuildMetric(n int, dist func(a, b int) float64, src *rng.Source) (*Tree, error) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.PermInPlace(src.Derive("hst-perm"), perm)
	beta := src.Derive("hst-beta").Uniform(0.5, 1.0)
	points := make([]geo.Point, n)
	for i := range points {
		points[i] = geo.Pt(float64(i), 0)
	}
	return BuildMetricWithParams(points, dist, beta, perm)
}

// BuildMetricWithParams is BuildMetric with explicit β and permutation.
// points is retained for Tree.Point reporting; all geometry comes from
// rawDist.
func BuildMetricWithParams(points []geo.Point, rawDist func(a, b int) float64, beta float64, perm []int) (*Tree, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if beta < 0.5 || beta > 1 {
		return nil, fmt.Errorf("%w (got %v)", ErrBadBeta, beta)
	}
	if err := checkPerm(perm, len(points)); err != nil {
		return nil, err
	}

	scale, maxDist, err := metricScaleFor(len(points), rawDist)
	if err != nil {
		return nil, err
	}
	dist := func(a, b int) float64 { return rawDist(a, b) * scale }

	depth := 1
	if maxDist*scale > 0 {
		depth = int(math.Ceil(math.Log2(2 * maxDist * scale)))
		if depth < 1 {
			depth = 1
		}
	}

	all := make([]int, len(points))
	for i := range all {
		all[i] = i
	}
	root := &Node{Level: depth, Pivot: -1, Points: all}

	// Carve top-down. member marks which points remain unassigned within
	// the cluster currently being carved.
	member := make([]bool, len(points))
	current := []*Node{root}
	for level := depth - 1; level >= 0; level-- {
		radius := beta * math.Ldexp(1, level)
		var next []*Node
		for _, cluster := range current {
			for _, p := range cluster.Points {
				member[p] = true
			}
			remaining := len(cluster.Points)
			for _, pivot := range perm {
				if remaining == 0 {
					break
				}
				var carved []int
				for _, p := range cluster.Points {
					if member[p] && dist(p, pivot) <= radius {
						carved = append(carved, p)
					}
				}
				if len(carved) == 0 {
					continue
				}
				child := &Node{Level: level, Pivot: pivot, Points: carved}
				cluster.Children = append(cluster.Children, child)
				next = append(next, child)
				for _, p := range carved {
					member[p] = false
				}
				remaining -= len(carved)
			}
		}
		current = next
	}

	t := &Tree{
		pts:   points,
		beta:  beta,
		scale: scale,
		perm:  perm,
		root:  root,
		depth: depth,
	}
	if err := t.finish(current); err != nil {
		return nil, err
	}
	return t, nil
}

// finish validates the leaves, computes the branching factor, and assigns
// leaf codes by walking root-to-leaf paths.
func (t *Tree) finish(leaves []*Node) error {
	for _, leaf := range leaves {
		if len(leaf.Points) != 1 {
			return fmt.Errorf("hst: level-0 cluster holds %d points; metric scaling failed", len(leaf.Points))
		}
	}
	degree := 1
	var maxDegree func(*Node)
	maxDegree = func(n *Node) {
		if len(n.Children) > degree {
			degree = len(n.Children)
		}
		for _, ch := range n.Children {
			maxDegree(ch)
		}
	}
	maxDegree(t.root)
	if degree > 255 {
		return fmt.Errorf("%w (got %d)", ErrDegreeOverflow, degree)
	}
	t.degree = degree

	t.codes = make([]Code, len(t.pts))
	t.byCode = make(map[Code]int, len(t.pts))
	path := make([]byte, 0, t.depth)
	var assign func(*Node) error
	assign = func(n *Node) error {
		if n.Level == 0 {
			code := Code(path)
			p := n.Points[0]
			t.codes[p] = code
			if prev, dup := t.byCode[code]; dup {
				return fmt.Errorf("hst: points %d and %d share leaf code", prev, p)
			}
			t.byCode[code] = p
			return nil
		}
		for j, ch := range n.Children {
			path = append(path, byte(j))
			if err := assign(ch); err != nil {
				return err
			}
			path = path[:len(path)-1]
		}
		return nil
	}
	return assign(t.root)
}

// metricScaleFor returns the factor by which distances must be multiplied
// so that the minimum pairwise distance exceeds 1 (so level-0 balls of
// radius β ≤ 1 isolate single points), along with the metric's diameter.
// It errors on coincident points and on non-finite or asymmetric inputs.
func metricScaleFor(n int, dist func(a, b int) float64) (scale, maxDist float64, err error) {
	minDist := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := dist(i, j)
			if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
				return 0, 0, fmt.Errorf("hst: dist(%d,%d) = %v is not a valid metric value", i, j, d)
			}
			if d == 0 {
				return 0, 0, fmt.Errorf("%w: points %d and %d coincide", ErrDuplicatePoints, i, j)
			}
			if d < minDist {
				minDist = d
			}
			if d > maxDist {
				maxDist = d
			}
		}
	}
	if math.IsInf(minDist, 1) { // single point
		return 1, 0, nil
	}
	if minDist > 1.0000001 {
		return 1, maxDist, nil
	}
	return 2 / minDist, maxDist, nil
}

func checkPerm(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("%w: length %d for %d points", ErrBadPerm, len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return fmt.Errorf("%w: bad entry %d", ErrBadPerm, p)
		}
		seen[p] = true
	}
	return nil
}
