package hst

import (
	"testing"

	"github.com/pombm/pombm/internal/rng"
)

// The flat arena trie must be answer-for-answer identical to the original
// map trie on every operation. These tests drive both with the same
// randomized operation tapes — in dense and sparse child layouts — and
// compare every return value.

// diffPair couples a flat index with the map reference.
type diffPair struct {
	flat *LeafIndex
	ref  *mapLeafIndex
}

func newDiffPair(depth, degree int) *diffPair {
	return &diffPair{flat: NewLeafIndexDegree(depth, degree), ref: newMapLeafIndex(depth)}
}

func (p *diffPair) check(t *testing.T, step int) {
	t.Helper()
	if p.flat.Len() != p.ref.Len() {
		t.Fatalf("step %d: Len %d ≠ %d", step, p.flat.Len(), p.ref.Len())
	}
	fm, fok := p.flat.MinID()
	rm, rok := p.ref.MinID()
	if fok != rok || (fok && fm != rm) {
		t.Fatalf("step %d: MinID (%d,%v) ≠ (%d,%v)", step, fm, fok, rm, rok)
	}
}

// driveDifferential runs a randomized Insert/Remove/PopNearest/PopMin/
// Nearest/CountPrefix tape over both implementations.
func driveDifferential(t *testing.T, depth, degree int, steps int, seed uint64) {
	t.Helper()
	src := rng.New(seed)
	p := newDiffPair(depth, degree)
	live := map[int]Code{}
	nextID := 0
	randCode := func() Code {
		b := make([]byte, depth)
		for i := range b {
			b[i] = byte(src.Intn(degree))
		}
		return Code(b)
	}
	for step := 0; step < steps; step++ {
		switch op := src.Intn(10); {
		case op < 4: // insert
			c := randCode()
			errF := p.flat.Insert(c, nextID)
			errR := p.ref.Insert(c, nextID)
			if (errF == nil) != (errR == nil) {
				t.Fatalf("step %d: Insert err %v ≠ %v", step, errF, errR)
			}
			live[nextID] = c
			nextID++
		case op < 6: // remove an arbitrary live item (or a missing one)
			if len(live) == 0 || src.Float64() < 0.1 {
				c := randCode()
				if gf, gr := p.flat.Remove(c, nextID+1000), p.ref.Remove(c, nextID+1000); gf != gr {
					t.Fatalf("step %d: Remove(missing) %v ≠ %v", step, gf, gr)
				}
				break
			}
			for id, c := range live {
				if gf, gr := p.flat.Remove(c, id), p.ref.Remove(c, id); gf != gr {
					t.Fatalf("step %d: Remove(%d) %v ≠ %v", step, id, gf, gr)
				}
				delete(live, id)
				break
			}
		case op < 8: // pop nearest (optionally level-capped)
			q := randCode()
			max := depth
			if src.Float64() < 0.5 {
				max = src.Intn(depth + 1)
			}
			fid, flvl, fok := p.flat.PopNearestWithin(q, max)
			rid, rlvl, rok := p.ref.PopNearestWithin(q, max)
			if fid != rid || flvl != rlvl || fok != rok {
				t.Fatalf("step %d: PopNearestWithin(%v,%d) = (%d,%d,%v) ≠ (%d,%d,%v)",
					step, []byte(q), max, fid, flvl, fok, rid, rlvl, rok)
			}
			if fok {
				delete(live, fid)
			}
		case op < 9: // pop the global minimum
			fid, fok := p.flat.PopMin()
			rid, rok := p.ref.PopMin()
			if fid != rid || fok != rok {
				t.Fatalf("step %d: PopMin (%d,%v) ≠ (%d,%v)", step, fid, fok, rid, rok)
			}
			if fok {
				delete(live, fid)
			}
		default: // read-only probes
			q := randCode()
			fid, flvl, fok := p.flat.Nearest(q)
			rid, rlvl, rok := p.ref.Nearest(q)
			if fid != rid || flvl != rlvl || fok != rok {
				t.Fatalf("step %d: Nearest = (%d,%d,%v) ≠ (%d,%d,%v)", step, fid, flvl, fok, rid, rlvl, rok)
			}
			pl := src.Intn(depth + 1)
			if cf, cr := p.flat.CountPrefix(q[:pl]), p.ref.CountPrefix(q[:pl]); cf != cr {
				t.Fatalf("step %d: CountPrefix %d ≠ %d", step, cf, cr)
			}
		}
		p.check(t, step)
	}
	// Both must hold exactly the same (code, id) multiset at the end.
	gotF := map[int]Code{}
	p.flat.Walk(func(c Code, id int) { gotF[id] = c })
	gotR := map[int]Code{}
	p.ref.Walk(func(c Code, id int) { gotR[id] = c })
	if len(gotF) != len(gotR) {
		t.Fatalf("Walk: %d items ≠ %d", len(gotF), len(gotR))
	}
	for id, c := range gotR {
		if gotF[id] != c {
			t.Fatalf("Walk: item %d at %v ≠ %v", id, []byte(gotF[id]), []byte(c))
		}
	}
}

func TestLeafIndexDifferentialDense(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		driveDifferential(t, 6, 4, 4000, uint64(1000+trial))
	}
}

func TestLeafIndexDifferentialSparse(t *testing.T) {
	// Degree above denseDegreeLimit forces the sibling-list fallback.
	for trial := 0; trial < 4; trial++ {
		driveDifferential(t, 4, denseDegreeLimit+8, 3000, uint64(2000+trial))
	}
}

func TestLeafIndexDifferentialUnknownDegree(t *testing.T) {
	// NewLeafIndex (no degree hint) must behave identically too.
	src := rng.New(7)
	flat := NewLeafIndex(5)
	ref := newMapLeafIndex(5)
	for step := 0; step < 2000; step++ {
		b := make([]byte, 5)
		for i := range b {
			b[i] = byte(src.Intn(3))
		}
		c := Code(b)
		if src.Float64() < 0.6 {
			if err := flat.Insert(c, step); err != nil {
				t.Fatal(err)
			}
			if err := ref.Insert(c, step); err != nil {
				t.Fatal(err)
			}
		} else {
			fid, flvl, fok := flat.PopNearest(c)
			rid, rlvl, rok := ref.PopNearest(c)
			if fid != rid || flvl != rlvl || fok != rok {
				t.Fatalf("step %d: PopNearest (%d,%d,%v) ≠ (%d,%d,%v)", step, fid, flvl, fok, rid, rlvl, rok)
			}
		}
	}
}

func TestLeafIndexDepthZero(t *testing.T) {
	// Degenerate single-level trees: every item lives on the root.
	x := NewLeafIndexDegree(0, 1)
	if err := x.Insert(Code(""), 3); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(Code(""), 1); err != nil {
		t.Fatal(err)
	}
	if id, lvl, ok := x.Nearest(Code("")); !ok || id != 1 || lvl != 0 {
		t.Fatalf("Nearest = (%d,%d,%v)", id, lvl, ok)
	}
	if id, _, ok := x.PopNearest(Code("")); !ok || id != 1 {
		t.Fatalf("PopNearest = (%d,%v)", id, ok)
	}
	if !x.Remove(Code(""), 3) {
		t.Fatal("Remove failed")
	}
	if x.Len() != 0 {
		t.Fatalf("Len = %d", x.Len())
	}
}

func TestLeafIndexDenseRejectsOutOfRangeDigit(t *testing.T) {
	x := NewLeafIndexDegree(2, 3)
	if err := x.Insert(mkCode(0, 3), 1); err == nil {
		t.Error("digit ≥ degree accepted by dense index")
	}
	if x.Len() != 0 {
		t.Fatalf("failed insert mutated the index: Len = %d", x.Len())
	}
	if err := x.Insert(mkCode(2, 2), 1); err != nil {
		t.Fatal(err)
	}
	// Out-of-range digits in queries are treated as absent branches.
	if x.Remove(mkCode(0, 9), 1) {
		t.Error("Remove with out-of-range digit succeeded")
	}
	if got := x.CountPrefix(mkCode(9)); got != 0 {
		t.Errorf("CountPrefix = %d", got)
	}
	if _, lvl, ok := x.Nearest(mkCode(9, 9)); !ok || lvl != 2 {
		t.Errorf("Nearest diverged at level %d, %v", lvl, ok)
	}
}

// TestLeafIndexArenaReuse checks the freelist contract: a long steady-state
// churn (every insert matched by a removal) must not grow the arenas beyond
// their high-water mark.
func TestLeafIndexArenaReuse(t *testing.T) {
	const depth, degree = 6, 4
	x := NewLeafIndexDegree(depth, degree)
	src := rng.New(11)
	randCode := func() Code {
		b := make([]byte, depth)
		for i := range b {
			b[i] = byte(src.Intn(degree))
		}
		return Code(b)
	}
	codes := make([]Code, 64)
	for i := range codes {
		codes[i] = randCode()
		if err := x.Insert(codes[i], i); err != nil {
			t.Fatal(err)
		}
	}
	warm := len(x.nodes)
	for round := 0; round < 2000; round++ {
		i := src.Intn(len(codes))
		if !x.Remove(codes[i], i) {
			t.Fatalf("round %d: remove failed", round)
		}
		codes[i] = randCode()
		if err := x.Insert(codes[i], i); err != nil {
			t.Fatal(err)
		}
	}
	// Each (remove, insert) pair may touch at most one fresh path of nodes
	// before reuse kicks in; the arena must stay near its high-water mark,
	// not grow linearly with churn.
	if len(x.nodes) > warm+depth*len(codes) {
		t.Fatalf("node arena grew from %d to %d over steady-state churn", warm, len(x.nodes))
	}
}

// FuzzLeafIndexDifferential drives the flat trie and the map trie with an
// identical operation tape decoded from fuzz input and requires identical
// answers everywhere.
func FuzzLeafIndexDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{255, 0, 255, 0, 1, 2, 250, 9, 9, 9})
	f.Add([]byte{})
	const depth = 4
	const degree = 3
	f.Fuzz(func(t *testing.T, tape []byte) {
		flat := NewLeafIndexDegree(depth, degree)
		ref := newMapLeafIndex(depth)
		nextID := 0
		var liveIDs []int
		liveCodes := map[int]Code{}
		readCode := func(pos int) Code {
			buf := make([]byte, depth)
			for i := range buf {
				if pos+i < len(tape) {
					buf[i] = tape[pos+i] % degree
				}
			}
			return Code(buf)
		}
		for pos := 0; pos+depth < len(tape); pos += depth + 1 {
			op := tape[pos]
			code := readCode(pos + 1)
			switch op % 4 {
			case 0, 1: // insert
				errF := flat.Insert(code, nextID)
				errR := ref.Insert(code, nextID)
				if (errF == nil) != (errR == nil) {
					t.Fatalf("Insert err %v ≠ %v", errF, errR)
				}
				if errF == nil {
					liveIDs = append(liveIDs, nextID)
					liveCodes[nextID] = code
				}
				nextID++
			case 2: // remove the oldest live item
				if len(liveIDs) == 0 {
					continue
				}
				victim := liveIDs[0]
				liveIDs = liveIDs[1:]
				gf := flat.Remove(liveCodes[victim], victim)
				gr := ref.Remove(liveCodes[victim], victim)
				if gf != gr || !gf {
					t.Fatalf("Remove(%d) %v ≠ %v", victim, gf, gr)
				}
				delete(liveCodes, victim)
			case 3: // pop nearest
				fid, flvl, fok := flat.PopNearest(code)
				rid, rlvl, rok := ref.PopNearest(code)
				if fid != rid || flvl != rlvl || fok != rok {
					t.Fatalf("PopNearest (%d,%d,%v) ≠ (%d,%d,%v)", fid, flvl, fok, rid, rlvl, rok)
				}
				if fok {
					delete(liveCodes, fid)
					for i, id := range liveIDs {
						if id == fid {
							liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
							break
						}
					}
				}
			}
			if flat.Len() != ref.Len() {
				t.Fatalf("Len %d ≠ %d", flat.Len(), ref.Len())
			}
			fid, flvl, fok := flat.Nearest(code)
			rid, rlvl, rok := ref.Nearest(code)
			if fid != rid || flvl != rlvl || fok != rok {
				t.Fatalf("Nearest (%d,%d,%v) ≠ (%d,%d,%v)", fid, flvl, fok, rid, rlvl, rok)
			}
		}
	})
}
