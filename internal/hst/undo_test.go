package hst

import (
	"sort"
	"testing"

	"github.com/pombm/pombm/internal/rng"
)

// snapshot flattens an index into a sorted (code, id, cap) list for
// whole-state equality checks.
func snapshot(x *LeafIndex) []struct {
	code string
	id   int
	cap  int
} {
	var out []struct {
		code string
		id   int
		cap  int
	}
	x.WalkCap(func(code Code, id, capacity int) {
		out = append(out, struct {
			code string
			id   int
			cap  int
		}{string(code), id, capacity})
	})
	sort.Slice(out, func(a, b int) bool {
		if out[a].id != out[b].id {
			return out[a].id < out[b].id
		}
		return out[a].code < out[b].code
	})
	return out
}

func sameSnapshot(t *testing.T, step int, a, b *LeafIndex) {
	t.Helper()
	sa, sb := snapshot(a), snapshot(b)
	if len(sa) != len(sb) {
		t.Fatalf("step %d: %d items ≠ %d items", step, len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("step %d: item %d: %+v ≠ %+v", step, i, sa[i], sb[i])
		}
	}
}

// TestPopNearestWithinCodeMatchesPop drives PopNearestWithinCode and
// PopNearestWithin over mirrored indexes with one randomized tape: every
// return value must agree, and the code written into dst must be a real
// leaf of the popped item — proven by using it to undo the pop
// (AddCap/InsertCap) and checking the whole index state round-trips.
func TestPopNearestWithinCodeMatchesPop(t *testing.T) {
	for _, degree := range []int{4, 0} { // dense and sparse layouts
		const depth = 5
		src := rng.New(uint64(71 + degree))
		a := NewLeafIndexDegree(depth, degree)
		b := NewLeafIndexDegree(depth, degree)
		randCode := func() Code {
			buf := make([]byte, depth)
			for i := range buf {
				buf[i] = byte(src.Intn(4))
			}
			return Code(buf)
		}
		nextID := 0
		dst := make([]byte, depth)
		for step := 0; step < 800; step++ {
			switch op := src.Intn(10); {
			case op < 4:
				c := randCode()
				capacity := 1 + src.Intn(2)
				if err := a.InsertCap(c, nextID, capacity); err != nil {
					t.Fatal(err)
				}
				if err := b.InsertCap(c, nextID, capacity); err != nil {
					t.Fatal(err)
				}
				nextID++
			case op < 8: // pop, and verify dst against the reference pop
				q := randCode()
				max := src.Intn(depth + 1)
				id, lvl, ok := a.PopNearestWithinCode(q, max, dst)
				wid, wlvl, wok := b.PopNearestWithin(q, max)
				if id != wid || lvl != wlvl || ok != wok {
					t.Fatalf("step %d: PopNearestWithinCode (%d,%d,%v) ≠ PopNearestWithin (%d,%d,%v)",
						step, id, lvl, ok, wid, wlvl, wok)
				}
				if !ok {
					continue
				}
				// The recorded code must address the popped item exactly:
				// returning the unit through it must round-trip the state.
				if !a.AddCap(Code(dst), id, 1) {
					if err := a.InsertCap(Code(dst), id, 1); err != nil {
						t.Fatalf("step %d: undo insert: %v", step, err)
					}
				}
				if !b.AddCap(Code(dst), id, 1) {
					if err := b.InsertCap(Code(dst), id, 1); err != nil {
						t.Fatalf("step %d: reference undo: %v", step, err)
					}
				}
				// Redo on both so the tape keeps making progress.
				a.PopNearestWithinCode(q, max, dst)
				b.PopNearestWithin(q, max)
			default: // withdraw someone so freelists churn
				if a.Len() == 0 {
					continue
				}
				id, _ := a.MinID()
				var code Code
				a.Walk(func(c Code, i int) {
					if i == id && code == "" {
						code = c
					}
				})
				a.Remove(code, id)
				b.Remove(code, id)
			}
			if step%50 == 0 {
				sameSnapshot(t, step, a, b)
			}
		}
		sameSnapshot(t, -1, a, b)
	}
}

// TestPopNearestWithinCodeUndoRestoresState: a burst of speculative pops
// undone in reverse order must restore the exact index state — the
// invariant the shard-parallel batch path's rewind leans on.
func TestPopNearestWithinCodeUndoRestoresState(t *testing.T) {
	const depth, degree = 4, 4
	src := rng.New(99)
	x := NewLeafIndexDegree(depth, degree)
	ref := NewLeafIndexDegree(depth, degree)
	for id := 0; id < 60; id++ {
		buf := make([]byte, depth)
		for i := range buf {
			buf[i] = byte(src.Intn(degree))
		}
		capacity := 1 + id%2
		if err := x.InsertCap(Code(buf), id, capacity); err != nil {
			t.Fatal(err)
		}
		if err := ref.InsertCap(Code(buf), id, capacity); err != nil {
			t.Fatal(err)
		}
	}
	type undo struct {
		code []byte
		id   int
	}
	var log []undo
	dst := make([]byte, depth)
	for i := 0; i < 25; i++ {
		q := make([]byte, depth)
		for j := range q {
			q[j] = byte(src.Intn(degree))
		}
		if id, _, ok := x.PopNearestWithinCode(Code(q), depth, dst); ok {
			log = append(log, undo{code: append([]byte(nil), dst...), id: id})
		}
	}
	if len(log) == 0 {
		t.Fatal("no pops recorded")
	}
	for i := len(log) - 1; i >= 0; i-- {
		u := log[i]
		if !x.AddCap(Code(u.code), u.id, 1) {
			if err := x.InsertCap(Code(u.code), u.id, 1); err != nil {
				t.Fatalf("undo %d: %v", i, err)
			}
		}
	}
	sameSnapshot(t, -1, x, ref)
}

// TestRefUnitsProbesMinedRefs: RefUnits must agree with a mined ref's
// capacity, track ConsumeRef unit by unit, and answer false once the item
// is gone — without ever mutating anything.
func TestRefUnitsProbesMinedRefs(t *testing.T) {
	const depth, degree = 3, 4
	x := NewLeafIndexDegree(depth, degree)
	c := Code([]byte{1, 2, 3})
	if err := x.InsertCap(c, 7, 2); err != nil {
		t.Fatal(err)
	}
	refs := x.NearestKRef(c, 1, nil)
	if len(refs) != 1 {
		t.Fatalf("mined %d refs", len(refs))
	}
	if units, ok := x.RefUnits(refs[0]); !ok || units != 2 {
		t.Fatalf("RefUnits = (%d,%v), want (2,true)", units, ok)
	}
	if !x.ConsumeRef(refs[0]) {
		t.Fatal("ConsumeRef failed")
	}
	if units, ok := x.RefUnits(refs[0]); !ok || units != 1 {
		t.Fatalf("RefUnits after one consume = (%d,%v), want (1,true)", units, ok)
	}
	if !x.ConsumeRef(refs[0]) {
		t.Fatal("second ConsumeRef failed")
	}
	if _, ok := x.RefUnits(refs[0]); ok {
		t.Fatal("RefUnits found a fully consumed item")
	}
	if _, ok := x.RefUnits(CandidateRef{ID: 7, Node: 1 << 20}); ok {
		t.Fatal("RefUnits accepted an out-of-range node")
	}
}

// TestInsertGenBumpsOnInsertOnly pins the generation contract: inserts
// (and only inserts) move it. The pipelined batch policy distinguishes
// "refs possibly consumed" from "refs possibly redirected" with it.
func TestInsertGenBumpsOnInsertOnly(t *testing.T) {
	const depth, degree = 3, 4
	x := NewLeafIndexDegree(depth, degree)
	if x.InsertGen() != 0 {
		t.Fatalf("fresh index generation = %d", x.InsertGen())
	}
	c := Code([]byte{0, 1, 2})
	if err := x.InsertCap(c, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(c, 2); err != nil {
		t.Fatal(err)
	}
	g := x.InsertGen()
	if g != 2 {
		t.Fatalf("generation after two inserts = %d", g)
	}
	x.PopNearest(c)      // consumes a unit of id 1
	x.AddCap(c, 1, 1)    // and puts it back
	x.Remove(c, 2)       // structural removal
	x.CountPrefix(c[:1]) // reads
	x.NearestKRef(c, 2, nil)
	if x.InsertGen() != g {
		t.Fatalf("generation moved to %d on non-inserts", x.InsertGen())
	}
	if err := x.Insert(c, 3); err != nil {
		t.Fatal(err)
	}
	if x.InsertGen() != g+1 {
		t.Fatalf("generation after reinsert = %d, want %d", x.InsertGen(), g+1)
	}
}
