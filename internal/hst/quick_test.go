package hst

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/pombm/pombm/internal/rng"
)

// quickTree is a fixed random tree reused across the property tests below.
func quickTree(t *testing.T) *Tree {
	t.Helper()
	src := rng.New(20240611)
	pts := randomPoints(src.Derive("pts"), 120, 250)
	tr, err := Build(pts, src.Derive("tree"))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// randomLeaf maps an arbitrary uint64 onto a leaf of the complete tree
// (real or fake), giving testing/quick a uniform-ish generator.
func randomLeaf(tr *Tree, seed uint64) Code {
	s := rng.New(seed)
	buf := make([]byte, tr.Depth())
	for i := range buf {
		buf[i] = byte(s.Intn(tr.Degree()))
	}
	return Code(buf)
}

func TestQuickTreeDistanceIsMetric(t *testing.T) {
	tr := quickTree(t)
	identity := func(x uint64) bool {
		a := randomLeaf(tr, x)
		return tr.Dist(a, a) == 0
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	symmetry := func(x, y uint64) bool {
		a, b := randomLeaf(tr, x), randomLeaf(tr, y)
		return tr.Dist(a, b) == tr.Dist(b, a)
	}
	if err := quick.Check(symmetry, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	positivity := func(x, y uint64) bool {
		a, b := randomLeaf(tr, x), randomLeaf(tr, y)
		if a == b {
			return tr.Dist(a, b) == 0
		}
		return tr.Dist(a, b) >= 4 // the minimum non-zero leaf distance
	}
	if err := quick.Check(positivity, nil); err != nil {
		t.Errorf("positivity: %v", err)
	}
}

// TestQuickTreeDistanceIsUltrametric checks the strong triangle inequality
// dT(a, c) ≤ max(dT(a, b), dT(b, c)) that characterises leaf distances on
// trees with level-uniform edge lengths — the property the mechanism's
// Geo-I proof implicitly leans on in Case 1 of Theorem 1.
func TestQuickTreeDistanceIsUltrametric(t *testing.T) {
	tr := quickTree(t)
	f := func(x, y, z uint64) bool {
		a, b, c := randomLeaf(tr, x), randomLeaf(tr, y), randomLeaf(tr, z)
		return tr.Dist(a, c) <= math.Max(tr.Dist(a, b), tr.Dist(b, c))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickLCALevelConsistentWithAncestors(t *testing.T) {
	tr := quickTree(t)
	f := func(x, y uint64) bool {
		a, b := randomLeaf(tr, x), randomLeaf(tr, y)
		lvl := tr.LCALevel(a, b)
		// The ancestors at the LCA level must coincide; one level below
		// (if distinct leaves) they must differ.
		if tr.Ancestor(a, lvl) != tr.Ancestor(b, lvl) {
			return false
		}
		if lvl == 0 {
			return a == b
		}
		return tr.Ancestor(a, lvl-1) != tr.Ancestor(b, lvl-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSiblingSetDistance(t *testing.T) {
	// Every leaf generated as a level-i sibling of x must be at exactly
	// LevelDist(i) from x — the geometric fact Alg. 2's weights rely on.
	tr := quickTree(t)
	f := func(x uint64, rawLvl uint8) bool {
		a := randomLeaf(tr, x)
		lvl := 1 + int(rawLvl)%tr.Depth()
		s := rng.New(x ^ 0x9e37)
		buf := []byte(a)
		d := tr.Depth()
		own := int(buf[d-lvl])
		digit := s.Intn(tr.Degree() - 1)
		if digit >= own {
			digit++
		}
		buf[d-lvl] = byte(digit)
		for j := d - lvl + 1; j < d; j++ {
			buf[j] = byte(s.Intn(tr.Degree()))
		}
		b := Code(buf)
		return tr.LCALevel(a, b) == lvl && tr.Dist(a, b) == LevelDist(lvl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
