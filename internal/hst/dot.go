package hst

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the real cluster tree in Graphviz DOT format for
// inspection (used by cmd/hstdump). It errors when the tree was
// reconstructed from a published view and has no cluster structure.
func (t *Tree) WriteDOT(w io.Writer) error {
	if t.root == nil {
		return fmt.Errorf("hst: no cluster structure to render (reconstructed tree)")
	}
	if _, err := fmt.Fprintln(w, "digraph hst {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=box, fontsize=10];")
	id := 0
	var emit func(n *Node) int
	emit = func(n *Node) int {
		my := id
		id++
		label := fmt.Sprintf("lvl %d\\n%s", n.Level, pointsLabel(n.Points))
		shape := ""
		if n.Level == 0 {
			shape = ", style=filled, fillcolor=lightblue"
		}
		fmt.Fprintf(w, "  n%d [label=\"%s\"%s];\n", my, label, shape)
		for j, ch := range n.Children {
			cid := emit(ch)
			fmt.Fprintf(w, "  n%d -> n%d [label=\"%d\"];\n", my, cid, j)
		}
		return my
	}
	emit(t.root)
	_, err := fmt.Fprintln(w, "}")
	return err
}

func pointsLabel(pts []int) string {
	const max = 8
	var b strings.Builder
	for i, p := range pts {
		if i == max {
			fmt.Fprintf(&b, "… (%d)", len(pts))
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "p%d", p)
	}
	return b.String()
}

// Stats summarises a tree for reporting.
type Stats struct {
	Depth       int
	Degree      int
	NumPoints   int
	RealNodes   int
	Beta        float64
	Scale       float64
	TotalLeaves float64 // leaves of the virtual complete tree, c^D
}

// Stats returns summary statistics of the tree.
func (t *Tree) Stats() Stats {
	s := Stats{
		Depth:       t.depth,
		Degree:      t.degree,
		NumPoints:   len(t.pts),
		Beta:        t.beta,
		Scale:       t.scale,
		TotalLeaves: t.TotalLeaves(),
	}
	if t.root != nil {
		var count func(*Node) int
		count = func(n *Node) int {
			c := 1
			for _, ch := range n.Children {
				c += count(ch)
			}
			return c
		}
		s.RealNodes = count(t.root)
	}
	return s
}
