package hst

import (
	"encoding/json"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

func TestPublishRoundTrip(t *testing.T) {
	src := rng.New(5)
	pts := randomPoints(src.Derive("pts"), 50, 100)
	tr, err := Build(pts, src.Derive("tree"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Depth() != tr.Depth() || back.Degree() != tr.Degree() {
		t.Errorf("D,c = %d,%d want %d,%d", back.Depth(), back.Degree(), tr.Depth(), tr.Degree())
	}
	if back.Scale() != tr.Scale() || back.Beta() != tr.Beta() {
		t.Error("scale/beta lost in round trip")
	}
	for i := range pts {
		if back.CodeOf(i) != tr.CodeOf(i) {
			t.Fatalf("code %d changed in round trip", i)
		}
		if back.Point(i) != tr.Point(i) {
			t.Fatalf("point %d changed in round trip", i)
		}
	}
	// Distances agree for all pairs.
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if back.Dist(back.CodeOf(i), back.CodeOf(j)) != tr.Dist(tr.CodeOf(i), tr.CodeOf(j)) {
				t.Fatalf("distance (%d,%d) changed", i, j)
			}
		}
	}
	if back.Root() != nil {
		t.Error("reconstructed tree should not expose cluster structure")
	}
}

func TestPublishedValidation(t *testing.T) {
	good := &Published{
		Depth: 2, Degree: 2, Scale: 1,
		Points: []geo.Point{geo.Pt(0, 0), geo.Pt(5, 5)},
		Codes:  [][]byte{{0, 0}, {1, 0}},
	}
	if _, err := good.Tree(); err != nil {
		t.Fatalf("valid published rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(p *Published)
	}{
		{"bad depth", func(p *Published) { p.Depth = 0 }},
		{"bad degree", func(p *Published) { p.Degree = 0 }},
		{"degree overflow", func(p *Published) { p.Degree = 300 }},
		{"no points", func(p *Published) { p.Points = nil; p.Codes = nil }},
		{"count mismatch", func(p *Published) { p.Codes = p.Codes[:1] }},
		{"short code", func(p *Published) { p.Codes[0] = []byte{0} }},
		{"digit overflow", func(p *Published) { p.Codes[0] = []byte{9, 0} }},
		{"duplicate codes", func(p *Published) { p.Codes[1] = []byte{0, 0} }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			p := &Published{
				Depth: good.Depth, Degree: good.Degree, Scale: good.Scale,
				Points: append([]geo.Point(nil), good.Points...),
				Codes:  [][]byte{append([]byte(nil), good.Codes[0]...), append([]byte(nil), good.Codes[1]...)},
			}
			tt.mutate(p)
			if _, err := p.Tree(); err == nil {
				t.Error("invalid published accepted")
			}
		})
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{"depth": -1}`), &tr); err == nil {
		t.Error("garbage accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &tr); err == nil {
		t.Error("non-JSON accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	pts := []geo.Point{geo.Pt(1, 1), geo.Pt(2, 3), geo.Pt(5, 3), geo.Pt(4, 4)}
	tr, err := BuildWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var sb jsonBuffer
	if err := tr.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if len(out) == 0 || out[:7] != "digraph" {
		t.Errorf("DOT output malformed: %q", out)
	}
	// Reconstructed trees cannot render.
	back, err := tr.Publish().Tree()
	if err != nil {
		t.Fatal(err)
	}
	if err := back.WriteDOT(&sb); err == nil {
		t.Error("reconstructed tree rendered DOT")
	}
	st := tr.Stats()
	if st.NumPoints != 4 || st.Depth != 4 || st.Degree != 2 || st.RealNodes == 0 {
		t.Errorf("Stats = %+v", st)
	}
}

// jsonBuffer is a minimal strings.Builder clone implementing io.Writer,
// avoiding an extra import block churn in this file.
type jsonBuffer struct{ b []byte }

func (s *jsonBuffer) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *jsonBuffer) String() string              { return string(s.b) }
