package hst

import (
	"fmt"
	"math"
)

// mapLeafIndex is the original pointer-and-map implementation of the leaf
// trie: one heap-allocated node per trie position, children behind a
// map[byte]*trieNode. It is retained as the behavioural reference for the
// arena-backed LeafIndex — the differential tests drive both with identical
// operation sequences and require identical answers — and as the baseline
// the flat layout is benchmarked against. It is not used on any serving
// path.
type mapLeafIndex struct {
	depth int
	size  int
	root  *trieNode
}

type trieNode struct {
	children map[byte]*trieNode
	count    int   // live items in this subtree
	minID    int   // smallest live item id in this subtree (maxInt when none)
	items    []int // ids, leaf nodes only
}

const noItem = math.MaxInt

// newMapLeafIndex returns an empty map-trie index for codes of the given
// depth.
func newMapLeafIndex(depth int) *mapLeafIndex {
	return &mapLeafIndex{depth: depth, root: &trieNode{minID: noItem}}
}

// Len returns the number of items currently indexed.
func (x *mapLeafIndex) Len() int { return x.size }

// Insert adds an item id at the given leaf code. Ids must be non-negative.
func (x *mapLeafIndex) Insert(code Code, id int) error {
	if len(code) != x.depth {
		return fmt.Errorf("hst: code length %d, index depth %d", len(code), x.depth)
	}
	if id < 0 {
		return fmt.Errorf("hst: item id must be non-negative, got %d", id)
	}
	n := x.root
	n.count++
	if id < n.minID {
		n.minID = id
	}
	for j := 0; j < x.depth; j++ {
		if n.children == nil {
			n.children = make(map[byte]*trieNode)
		}
		ch := n.children[code[j]]
		if ch == nil {
			ch = &trieNode{minID: noItem}
			n.children[code[j]] = ch
		}
		ch.count++
		if id < ch.minID {
			ch.minID = id
		}
		n = ch
	}
	n.items = append(n.items, id)
	x.size++
	return nil
}

// Remove deletes one occurrence of id at the given leaf code. It reports
// whether the item was present.
func (x *mapLeafIndex) Remove(code Code, id int) bool {
	if len(code) != x.depth {
		return false
	}
	// Locate the leaf first so failed removals do not corrupt counts.
	path := make([]*trieNode, 0, x.depth+1)
	n := x.root
	path = append(path, n)
	for j := 0; j < x.depth; j++ {
		if n.children == nil {
			return false
		}
		n = n.children[code[j]]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	found := -1
	for i, item := range n.items {
		if item == id {
			found = i
			break
		}
	}
	if found < 0 {
		return false
	}
	last := len(n.items) - 1
	n.items[found] = n.items[last]
	n.items = n.items[:last]
	// Decrement counts bottom-up along the path. A node's minimum can only
	// have changed when the removed id was that minimum.
	for i := len(path) - 1; i >= 0; i-- {
		p := path[i]
		p.count--
		if p.minID == id {
			p.minID = p.recomputeMin()
		}
	}
	x.size--
	return true
}

func (n *trieNode) recomputeMin() int {
	min := noItem
	for _, id := range n.items {
		if id < min {
			min = id
		}
	}
	for _, ch := range n.children {
		if ch.count > 0 && ch.minID < min {
			min = ch.minID
		}
	}
	return min
}

// Nearest returns the smallest-id item whose code has the deepest common
// prefix with the query code, along with the resulting LCA level.
func (x *mapLeafIndex) Nearest(code Code) (id, lcaLevel int, ok bool) {
	if x.size == 0 || len(code) != x.depth {
		return 0, 0, false
	}
	n := x.root
	j := 0
	for j < x.depth {
		ch := n.children[code[j]]
		if ch == nil || ch.count == 0 {
			break
		}
		n = ch
		j++
	}
	return n.minID, x.depth - j, true
}

// MinID returns the smallest live item id. ok is false when empty.
func (x *mapLeafIndex) MinID() (int, bool) {
	if x.size == 0 {
		return 0, false
	}
	return x.root.minID, true
}

// CountPrefix returns the number of live items whose code starts with the
// given prefix.
func (x *mapLeafIndex) CountPrefix(prefix Code) int {
	if len(prefix) > x.depth {
		return 0
	}
	n := x.root
	for j := 0; j < len(prefix); j++ {
		if n.children == nil {
			return 0
		}
		n = n.children[prefix[j]]
		if n == nil {
			return 0
		}
	}
	return n.count
}

// PopNearest atomically finds and removes the item Nearest would return.
func (x *mapLeafIndex) PopNearest(code Code) (id, lcaLevel int, ok bool) {
	return x.PopNearestWithin(code, x.depth)
}

// PopNearestWithin is PopNearest restricted to candidates whose LCA with
// the query sits at level ≤ maxLevel.
func (x *mapLeafIndex) PopNearestWithin(code Code, maxLevel int) (id, lcaLevel int, ok bool) {
	if x.size == 0 || len(code) != x.depth {
		return 0, 0, false
	}
	path := make([]*trieNode, 0, x.depth+1)
	n := x.root
	path = append(path, n)
	j := 0
	for j < x.depth {
		ch := n.children[code[j]]
		if ch == nil || ch.count == 0 {
			break
		}
		n = ch
		path = append(path, n)
		j++
	}
	lvl := x.depth - j
	if lvl > maxLevel {
		return 0, lvl, false
	}
	return x.popMinFrom(path), lvl, true
}

// PopMin atomically removes and returns the smallest live item id.
func (x *mapLeafIndex) PopMin() (int, bool) {
	if x.size == 0 {
		return 0, false
	}
	path := make([]*trieNode, 0, x.depth+1)
	path = append(path, x.root)
	return x.popMinFrom(path), true
}

// popMinFrom removes the minID item under the last node of path (a
// root-anchored trie path) and repairs counts and minIDs along the way.
func (x *mapLeafIndex) popMinFrom(path []*trieNode) int {
	n := path[len(path)-1]
	target := n.minID
	for depthAt := len(path) - 1; depthAt < x.depth; depthAt++ {
		var next *trieNode
		for _, ch := range n.children {
			if ch.count > 0 && ch.minID == target {
				next = ch
				break
			}
		}
		n = next // a live subtree always contains its own minID
		path = append(path, n)
	}
	for i, item := range n.items {
		if item == target {
			last := len(n.items) - 1
			n.items[i] = n.items[last]
			n.items = n.items[:last]
			break
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		p := path[i]
		p.count--
		if p.minID == target {
			p.minID = p.recomputeMin()
		}
	}
	x.size--
	return target
}

// Walk visits every indexed item (code, id). Order is unspecified.
func (x *mapLeafIndex) Walk(fn func(code Code, id int)) {
	var rec func(n *trieNode, prefix []byte)
	rec = func(n *trieNode, prefix []byte) {
		if n.count == 0 {
			return
		}
		for _, id := range n.items {
			fn(Code(prefix), id)
		}
		for digit, ch := range n.children {
			rec(ch, append(prefix, digit))
		}
	}
	rec(x.root, make([]byte, 0, x.depth))
}
