package hst

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

func TestBuildValidation(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0)}
	perm := []int{0, 1}
	if _, err := BuildWithParams(nil, 0.5, nil); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := BuildWithParams(pts, 0.4, perm); err == nil {
		t.Error("beta below 1/2 accepted")
	}
	if _, err := BuildWithParams(pts, 1.1, perm); err == nil {
		t.Error("beta above 1 accepted")
	}
	if _, err := BuildWithParams(pts, 0.5, []int{0}); err == nil {
		t.Error("short perm accepted")
	}
	if _, err := BuildWithParams(pts, 0.5, []int{0, 0}); err == nil {
		t.Error("repeated perm entry accepted")
	}
	if _, err := BuildWithParams(pts, 0.5, []int{0, 2}); err == nil {
		t.Error("out-of-range perm entry accepted")
	}
	dup := []geo.Point{geo.Pt(1, 1), geo.Pt(1, 1)}
	if _, err := BuildWithParams(dup, 0.5, perm); err == nil {
		t.Error("duplicate points accepted")
	}
	bad := []geo.Point{geo.Pt(math.NaN(), 0), geo.Pt(1, 1)}
	if _, err := BuildWithParams(bad, 0.5, perm); err == nil {
		t.Error("non-finite point accepted")
	}
}

func TestBuildSinglePoint(t *testing.T) {
	tr, err := BuildWithParams([]geo.Point{geo.Pt(3, 4)}, 0.5, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 1 || tr.Degree() != 1 {
		t.Errorf("D=%d c=%d, want 1,1", tr.Depth(), tr.Degree())
	}
	if tr.Dist(tr.CodeOf(0), tr.CodeOf(0)) != 0 {
		t.Error("self distance nonzero")
	}
}

// TestBuildPaperExample1 reproduces Example 1 of the paper: four points,
// permutation <o1,o2,o3,o4>, β = 1/2, yielding a binary tree of depth 4
// with LCA(o1,o2) at level 3 and LCA(o3,o4) at level 2.
func TestBuildPaperExample1(t *testing.T) {
	pts := []geo.Point{geo.Pt(1, 1), geo.Pt(2, 3), geo.Pt(5, 3), geo.Pt(4, 4)}
	tr, err := BuildWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 4 {
		t.Errorf("D = %d, want 4", tr.Depth())
	}
	if tr.Degree() != 2 {
		t.Errorf("c = %d, want 2", tr.Degree())
	}
	if tr.Scale() != 1 {
		t.Errorf("scale = %v, want 1", tr.Scale())
	}
	o := func(i int) Code { return tr.CodeOf(i - 1) }
	lcas := []struct {
		a, b int
		want int
	}{
		{1, 2, 3},                                  // o1,o2 split when carving level-2 children
		{1, 3, 4}, {1, 4, 4}, {2, 3, 4}, {2, 4, 4}, // across the root split
		{3, 4, 2}, // o3,o4 stay together until level 2
	}
	for _, tt := range lcas {
		if got := tr.LCALevel(o(tt.a), o(tt.b)); got != tt.want {
			t.Errorf("lvl(o%d,o%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	// Tree distances follow 2^(ℓ+2) − 4.
	if d := tr.Dist(o(1), o(2)); d != 28 {
		t.Errorf("dT(o1,o2) = %v, want 28", d)
	}
	if d := tr.Dist(o(3), o(4)); d != 12 {
		t.Errorf("dT(o3,o4) = %v, want 12", d)
	}
	if d := tr.Dist(o(1), o(3)); d != 60 {
		t.Errorf("dT(o1,o3) = %v, want 60", d)
	}
	// The complete binary tree of depth 4 has 16 leaves: 4 real, 12 fake
	// (f1..f12 in the paper's Fig. 3).
	if got := tr.TotalLeaves(); got != 16 {
		t.Errorf("TotalLeaves = %v, want 16", got)
	}
	// The root must have exactly the clusters {o1,o2} and {o3,o4}.
	root := tr.Root()
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children", len(root.Children))
	}
	if got := root.Children[0].Points; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("first root child = %v, want [0 1]", got)
	}
	if got := root.Children[1].Points; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("second root child = %v, want [2 3]", got)
	}
}

func TestBuildNonContraction(t *testing.T) {
	// FRT guarantee: tree distance never contracts the (scaled) metric.
	src := rng.New(2024)
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(src.DeriveN("pts", trial), 60, 200)
		tr, err := Build(pts, src.DeriveN("tree", trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				dm := pts[i].Dist(pts[j]) * tr.Scale()
				dt := tr.Dist(tr.CodeOf(i), tr.CodeOf(j))
				if dt < dm-1e-9 {
					t.Fatalf("trial %d: dT(%d,%d)=%v < scaled d=%v", trial, i, j, dt, dm)
				}
			}
		}
	}
}

func TestBuildDistortionIsLogarithmic(t *testing.T) {
	// Average over random trees: E[dT] ≤ C·log2(N)·d for a generous C.
	// This is a statistical sanity check of the FRT embedding, not a proof.
	src := rng.New(7)
	pts := randomPoints(src.Derive("pts"), 80, 200)
	const trees = 30
	sum := make(map[[2]int]float64)
	for trial := 0; trial < trees; trial++ {
		tr, err := Build(pts, src.DeriveN("tree", trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				sum[[2]int{i, j}] += tr.Dist(tr.CodeOf(i), tr.CodeOf(j))
			}
		}
	}
	logN := math.Log2(float64(len(pts)))
	var worst float64
	for pair, total := range sum {
		d := pts[pair[0]].Dist(pts[pair[1]])
		ratio := (total / trees) / d
		if ratio > worst {
			worst = ratio
		}
	}
	// The FRT bound is 8·H(n) ≈ O(log n) with constants; 40·log2 N is a
	// loose ceiling that catches gross construction bugs.
	if worst > 40*logN {
		t.Errorf("worst expected distortion %v exceeds %v", worst, 40*logN)
	}
}

func TestBuildClusterRadiusInvariant(t *testing.T) {
	// Every level-i cluster must lie within radius β·2^i of its pivot
	// (in the scaled metric) — the defining property of ball carving.
	src := rng.New(55)
	pts := randomPoints(src.Derive("pts"), 100, 150)
	tr, err := Build(pts, src.Derive("tree"))
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Pivot >= 0 {
			radius := tr.Beta() * math.Ldexp(1, n.Level)
			for _, p := range n.Points {
				d := pts[p].Dist(pts[n.Pivot]) * tr.Scale()
				if d > radius+1e-9 {
					t.Fatalf("level-%d cluster: point %d at scaled dist %v > radius %v of pivot %d",
						n.Level, p, d, radius, n.Pivot)
				}
			}
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(tr.Root())
}

func TestBuildChildPartition(t *testing.T) {
	// Children of every internal node partition the parent's point set.
	src := rng.New(91)
	pts := randomPoints(src.Derive("pts"), 70, 100)
	tr, err := Build(pts, src.Derive("tree"))
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Level == 0 {
			return
		}
		seen := map[int]bool{}
		for _, ch := range n.Children {
			for _, p := range ch.Points {
				if seen[p] {
					t.Fatalf("point %d in two children of a level-%d node", p, n.Level)
				}
				seen[p] = true
			}
			walk(ch)
		}
		if len(seen) != len(n.Points) {
			t.Fatalf("level-%d node: children cover %d of %d points", n.Level, len(seen), len(n.Points))
		}
	}
	walk(tr.Root())
}

func TestBuildAutoScaleTinyMetric(t *testing.T) {
	// Points closer than 1 apart must trigger scaling, not corrupt leaves.
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(0.1, 0), geo.Pt(0, 0.15)}
	tr, err := BuildWithParams(pts, 1.0, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Scale() <= 1 {
		t.Errorf("scale = %v, want > 1", tr.Scale())
	}
	// All three leaves distinct.
	codes := map[Code]bool{}
	for i := range pts {
		codes[tr.CodeOf(i)] = true
	}
	if len(codes) != 3 {
		t.Errorf("only %d distinct leaf codes", len(codes))
	}
}

func TestBuildCodesBijective(t *testing.T) {
	src := rng.New(31)
	pts := randomPoints(src.Derive("pts"), 200, 300)
	tr, err := Build(pts, src.Derive("tree"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		c := tr.CodeOf(i)
		if len(c) != tr.Depth() {
			t.Fatalf("code %d has length %d, want %d", i, len(c), tr.Depth())
		}
		j, ok := tr.PointOf(c)
		if !ok || j != i {
			t.Fatalf("PointOf(CodeOf(%d)) = (%d,%v)", i, j, ok)
		}
		if !tr.IsReal(c) {
			t.Fatalf("real code reported fake")
		}
	}
	if err := tr.CheckCode(Code("x")); err == nil {
		t.Error("malformed code accepted")
	}
}

func TestLevelDist(t *testing.T) {
	wants := map[int]float64{0: 0, 1: 4, 2: 12, 3: 28, 4: 60, 10: 4092}
	for lvl, want := range wants {
		if got := LevelDist(lvl); got != want {
			t.Errorf("LevelDist(%d) = %v, want %v", lvl, got, want)
		}
	}
}

func TestSiblingSetSizesSumToTotal(t *testing.T) {
	// 1 + Σ_{i=1..D} (c−1)c^{i−1} = c^D for the virtual complete tree.
	src := rng.New(3)
	pts := randomPoints(src.Derive("pts"), 40, 120)
	tr, err := Build(pts, src.Derive("tree"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i <= tr.Depth(); i++ {
		total += tr.SiblingSetSize(i)
	}
	if math.Abs(total-tr.TotalLeaves()) > 1e-6*tr.TotalLeaves() {
		t.Errorf("Σ|L_i| = %v, c^D = %v", total, tr.TotalLeaves())
	}
}

// randomPoints draws n distinct points in [0,side]².
func randomPoints(src *rng.Source, n int, side float64) []geo.Point {
	pts := make([]geo.Point, 0, n)
	seen := map[geo.Point]bool{}
	for len(pts) < n {
		p := geo.Pt(src.Uniform(0, side), src.Uniform(0, side))
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}
