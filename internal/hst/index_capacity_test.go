package hst

import (
	"testing"
)

// mk builds a code from digits.
func mk(digits ...byte) Code { return Code(digits) }

func TestInsertCapPopsConsumeUnits(t *testing.T) {
	x := NewLeafIndexDegree(2, 3)
	if err := x.InsertCap(mk(0, 0), 7, 3); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(mk(1, 2), 9); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 2 || x.Units() != 4 {
		t.Fatalf("Len=%d Units=%d, want 2/4", x.Len(), x.Units())
	}
	// Three pops at the item's own leaf drain worker 7 one unit at a time.
	for i := 0; i < 3; i++ {
		id, lvl, ok := x.PopNearest(mk(0, 0))
		if !ok || id != 7 || lvl != 0 {
			t.Fatalf("pop %d = (%d,%d,%v)", i, id, lvl, ok)
		}
	}
	if x.Len() != 1 || x.Units() != 1 {
		t.Fatalf("after draining: Len=%d Units=%d, want 1/1", x.Len(), x.Units())
	}
	// The exhausted item is gone: the next pop crosses to worker 9.
	if id, lvl, ok := x.PopNearest(mk(0, 0)); !ok || id != 9 || lvl != 2 {
		t.Fatalf("cross pop = (%d,%d,%v)", id, lvl, ok)
	}
	if x.Len() != 0 || x.Units() != 0 {
		t.Fatalf("emptied: Len=%d Units=%d", x.Len(), x.Units())
	}
}

func TestInsertCapValidation(t *testing.T) {
	x := NewLeafIndexDegree(1, 2)
	if err := x.InsertCap(mk(0), 1, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := x.InsertCap(mk(0), 1, -2); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRemoveTakesWholeItem(t *testing.T) {
	x := NewLeafIndexDegree(2, 3)
	if err := x.InsertCap(mk(1, 1), 4, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := x.PopNearest(mk(1, 1)); !ok {
		t.Fatal("pop failed")
	}
	if !x.Remove(mk(1, 1), 4) {
		t.Fatal("Remove failed")
	}
	if x.Len() != 0 || x.Units() != 0 {
		t.Fatalf("Len=%d Units=%d after Remove, want 0/0", x.Len(), x.Units())
	}
}

func TestAddCapAndConsume(t *testing.T) {
	x := NewLeafIndexDegree(2, 3)
	if err := x.InsertCap(mk(2, 0), 3, 1); err != nil {
		t.Fatal(err)
	}
	if !x.AddCap(mk(2, 0), 3, 2) {
		t.Fatal("AddCap on a live item failed")
	}
	if x.Units() != 3 || x.Len() != 1 {
		t.Fatalf("Units=%d Len=%d after AddCap, want 3/1", x.Units(), x.Len())
	}
	if x.AddCap(mk(2, 1), 3, 1) {
		t.Error("AddCap at the wrong leaf succeeded")
	}
	if x.AddCap(mk(2, 0), 8, 1) {
		t.Error("AddCap on an absent id succeeded")
	}
	if x.AddCap(mk(2, 0), 3, 0) {
		t.Error("AddCap with zero delta succeeded")
	}
	for i := 0; i < 3; i++ {
		if !x.Consume(mk(2, 0), 3) {
			t.Fatalf("Consume %d failed", i)
		}
	}
	if x.Consume(mk(2, 0), 3) {
		t.Error("Consume on an exhausted item succeeded")
	}
	if x.Len() != 0 || x.Units() != 0 {
		t.Fatalf("Len=%d Units=%d after draining, want 0/0", x.Len(), x.Units())
	}
}

func TestWalkCapReportsCapacity(t *testing.T) {
	x := NewLeafIndexDegree(2, 3)
	if err := x.InsertCap(mk(0, 1), 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(mk(2, 2), 2); err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	x.WalkCap(func(_ Code, id, capacity int) { got[id] = capacity })
	if got[1] != 2 || got[2] != 1 || len(got) != 2 {
		t.Fatalf("WalkCap = %v", got)
	}
}

func TestNearestKOrderAndTruncation(t *testing.T) {
	x := NewLeafIndexDegree(3, 3)
	// Query 0,0,0. Levels: id 5 at level 0 (exact leaf), ids 2 and 7 at
	// level 1 (share first two digits), id 1 at level 3 (different root
	// branch).
	ins := []struct {
		code Code
		id   int
	}{
		{mk(0, 0, 0), 5},
		{mk(0, 0, 1), 7},
		{mk(0, 0, 2), 2},
		{mk(1, 2, 0), 1},
	}
	for _, in := range ins {
		if err := x.Insert(in.code, in.id); err != nil {
			t.Fatal(err)
		}
	}
	all := x.NearestK(mk(0, 0, 0), 10, nil)
	want := []Candidate{
		{ID: 5, Code: mk(0, 0, 0), Level: 0, Cap: 1},
		{ID: 2, Code: mk(0, 0, 2), Level: 1, Cap: 1},
		{ID: 7, Code: mk(0, 0, 1), Level: 1, Cap: 1},
		{ID: 1, Code: mk(1, 2, 0), Level: 3, Cap: 1},
	}
	if len(all) != len(want) {
		t.Fatalf("NearestK = %+v, want %+v", all, want)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("NearestK[%d] = %+v, want %+v", i, all[i], want[i])
		}
	}
	// Truncation keeps the nearest k, smallest ids first within a level.
	top2 := x.NearestK(mk(0, 0, 0), 2, nil)
	if len(top2) != 2 || top2[0].ID != 5 || top2[1].ID != 2 {
		t.Fatalf("NearestK(2) = %+v", top2)
	}
	// Non-destructive: everything still present.
	if x.Len() != 4 {
		t.Fatalf("Len = %d after NearestK, want 4", x.Len())
	}
	// Appends to the caller's slice.
	out := make([]Candidate, 1, 8)
	out[0] = Candidate{ID: -1}
	got := x.NearestK(mk(0, 0, 0), 1, out)
	if len(got) != 2 || got[0].ID != -1 || got[1].ID != 5 {
		t.Fatalf("NearestK(append) = %+v", got)
	}
}

func TestCollectWithinLevelBound(t *testing.T) {
	x := NewLeafIndexDegree(3, 3)
	for _, in := range []struct {
		code Code
		id   int
	}{
		{mk(0, 0, 1), 4},
		{mk(0, 1, 0), 6},
		{mk(2, 0, 0), 8},
	} {
		if err := x.Insert(in.code, in.id); err != nil {
			t.Fatal(err)
		}
	}
	// Level ≤ 2 excludes the cross-root worker 8.
	got := x.CollectWithin(mk(0, 0, 0), 2, nil)
	if len(got) != 2 || got[0].ID != 4 || got[0].Level != 1 || got[1].ID != 6 || got[1].Level != 2 {
		t.Fatalf("CollectWithin = %+v", got)
	}
	// The full depth includes everything, still sorted (level, id).
	all := x.CollectWithin(mk(0, 0, 0), 3, nil)
	if len(all) != 3 || all[2].ID != 8 || all[2].Level != 3 {
		t.Fatalf("CollectWithin(full) = %+v", all)
	}
	if x.Len() != 3 {
		t.Fatalf("Len = %d after CollectWithin, want 3", x.Len())
	}
}

// TestNearestKMatchesCollectWithinPrefix pins that the bounded selection
// path of NearestK and the collect-then-sort path of CollectWithin agree:
// NearestK(k) is exactly the first k entries of the full enumeration.
func TestNearestKMatchesCollectWithinPrefix(t *testing.T) {
	const depth, degree = 4, 4
	x := NewLeafIndexDegree(depth, degree)
	seed := uint64(99)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	randCode := func() Code {
		b := make([]byte, depth)
		for i := range b {
			b[i] = byte(next(degree))
		}
		return Code(b)
	}
	for id := 0; id < 300; id++ {
		if err := x.InsertCap(randCode(), id, 1+next(2)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 40; trial++ {
		q := randCode()
		k := 1 + next(12)
		all := x.CollectWithin(q, depth, nil)
		topK := x.NearestK(q, k, nil)
		want := k
		if len(all) < k {
			want = len(all)
		}
		if len(topK) != want {
			t.Fatalf("trial %d: NearestK(%d) returned %d of %d", trial, k, len(topK), len(all))
		}
		for i := range topK {
			if topK[i] != all[i] {
				t.Fatalf("trial %d: NearestK[%d] = %+v, CollectWithin[%d] = %+v", trial, i, topK[i], i, all[i])
			}
		}
	}
}

// TestRemoveUnitsReportsRemainingCapacity pins the relocation contract.
func TestRemoveUnitsReportsRemainingCapacity(t *testing.T) {
	x := NewLeafIndexDegree(2, 3)
	if err := x.InsertCap(mk(1, 0), 5, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := x.PopNearest(mk(1, 0)); !ok {
		t.Fatal("pop failed")
	}
	units, ok := x.RemoveUnits(mk(1, 0), 5)
	if !ok || units != 3 {
		t.Fatalf("RemoveUnits = (%d,%v), want 3 after one pop", units, ok)
	}
	if _, ok := x.RemoveUnits(mk(1, 0), 5); ok {
		t.Error("second RemoveUnits succeeded")
	}
}

// TestNearestKMatchesSequentialPops cross-checks the non-destructive
// enumeration against the destructive pops on a random population: popping
// k times must yield exactly NearestK's ids in order.
func TestNearestKMatchesSequentialPops(t *testing.T) {
	const depth, degree = 4, 4
	x := NewLeafIndexDegree(depth, degree)
	seed := uint64(12345)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	randCode := func() Code {
		b := make([]byte, depth)
		for i := range b {
			b[i] = byte(next(degree))
		}
		return Code(b)
	}
	for id := 0; id < 200; id++ {
		if err := x.InsertCap(randCode(), id, 1+next(3)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		q := randCode()
		k := 1 + next(8)
		cands := x.NearestK(q, k, nil)
		// The pops drain each candidate's capacity before moving on (minID
		// keeps returning the same id until its item is exhausted), so the
		// pop sequence is the candidate list with each entry repeated Cap
		// times.
		for _, c := range cands {
			for u := 0; u < c.Cap; u++ {
				id, lvl, ok := x.PopNearest(q)
				if !ok || id != c.ID || lvl != c.Level {
					t.Fatalf("trial %d: pop unit %d of %+v = (%d,%d,%v)",
						trial, u, c, id, lvl, ok)
				}
			}
		}
		// Restore what the pops consumed so trials stay independent.
		for _, c := range cands {
			if err := x.InsertCap(c.Code, c.ID, c.Cap); err != nil {
				t.Fatal(err)
			}
		}
	}
}
