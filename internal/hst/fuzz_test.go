package hst

import (
	"testing"
)

// FuzzLeafIndex drives the trie with an arbitrary operation tape and checks
// it against a flat model: sizes always agree and Nearest always returns
// the lowest-id item at the minimal LCA level.
func FuzzLeafIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{255, 254, 0, 0, 0, 1, 1, 1})
	f.Add([]byte{})
	const depth = 4
	const degree = 3
	f.Fuzz(func(t *testing.T, tape []byte) {
		x := NewLeafIndex(depth)
		type item struct {
			code Code
			id   int
		}
		var model []item
		nextID := 0
		readCode := func(pos int) Code {
			buf := make([]byte, depth)
			for i := range buf {
				if pos+i < len(tape) {
					buf[i] = tape[pos+i] % degree
				}
			}
			return Code(buf)
		}
		for pos := 0; pos+depth < len(tape); pos += depth + 1 {
			op := tape[pos]
			code := readCode(pos + 1)
			switch op % 3 {
			case 0, 1: // insert (weighted towards growth)
				if err := x.Insert(code, nextID); err != nil {
					t.Fatalf("insert: %v", err)
				}
				model = append(model, item{code, nextID})
				nextID++
			case 2: // remove the oldest live item, if any
				if len(model) == 0 {
					continue
				}
				victim := model[0]
				model = model[1:]
				if !x.Remove(victim.code, victim.id) {
					t.Fatalf("remove of live item %d failed", victim.id)
				}
			}
			if x.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", x.Len(), len(model))
			}
			// Probe Nearest with the last code seen.
			id, lvl, ok := x.Nearest(code)
			if ok != (len(model) > 0) {
				t.Fatalf("Nearest ok = %v with %d items", ok, len(model))
			}
			if !ok {
				continue
			}
			bestLvl, bestID := depth+1, -1
			for _, it := range model {
				l := lcaLevel(code, it.code, depth)
				if l < bestLvl || (l == bestLvl && it.id < bestID) {
					bestLvl, bestID = l, it.id
				}
			}
			if lvl != bestLvl || id != bestID {
				t.Fatalf("Nearest = (%d,%d), model = (%d,%d)", id, lvl, bestID, bestLvl)
			}
		}
	})
}

func lcaLevel(a, b Code, depth int) int {
	for j := 0; j < depth; j++ {
		if a[j] != b[j] {
			return depth - j
		}
	}
	return 0
}
