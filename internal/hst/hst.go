// Package hst implements Hierarchically Well-Separated Trees (Fakcharoenphol,
// Rao, Talwar STOC'03) as used by the tree-based privacy framework of Tao et
// al. (ICDE 2020, Alg. 1).
//
// An HST here is a tree embedding of a finite point set ("predefined
// points"): leaves sit at level 0 and correspond 1:1 to points, the edge
// from a node at level i to its parent has length 2^(i+1), and therefore
// two leaves whose least common ancestor (LCA) is at level ℓ are at tree
// distance 2^(ℓ+2) − 4.
//
// The paper pads the tree with fake nodes into a *complete* c-ary tree
// (Alg. 1 lines 14-15). Materialising the fake subtrees costs O(c^D) memory,
// which is infeasible for the branching factors ball carving produces on
// realistic point sets, so this package represents the complete tree
// *virtually* through leaf codes: a leaf of the complete tree is exactly a
// string of D digits in base c (the child indexes along the root-to-leaf
// path). Real leaves carry the codes assigned by the construction; every
// other digit string denotes a fake leaf. All quantities the privacy
// mechanism and the matcher need (LCA levels, tree distances, sibling-set
// sizes) are functions of codes alone, so the two representations are
// interchangeable and the virtual one is exact, not an approximation.
package hst

import (
	"errors"
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/geo"
)

// Code identifies a leaf of the complete c-ary HST: byte j holds the child
// index taken at depth j on the root-to-leaf path (so len(Code) == D).
// Codes are comparable and usable as map keys.
type Code string

// Digit returns the child index at depth j.
func (c Code) Digit(j int) int { return int(c[j]) }

// Node is a cluster node of the real (pre-completion) HST. It is retained
// for inspection, DOT export, and tests; the mechanism and matcher work on
// codes instead.
type Node struct {
	Level    int     // leaves are level 0, the root is level D
	Pivot    int     // index of the permutation point whose ball carved this cluster; -1 for the root
	Points   []int   // indexes of the predefined points contained in this cluster
	Children []*Node // ordered as carved; child j has digit j
}

// Tree is an HST over a fixed set of predefined points, together with the
// virtual completion metadata (depth D and degree c).
type Tree struct {
	pts    []geo.Point
	beta   float64
	scale  float64
	perm   []int
	root   *Node // nil when reconstructed from a Published view
	depth  int
	degree int
	codes  []Code
	byCode map[Code]int
}

// Validation errors returned by Build.
var (
	ErrNoPoints        = errors.New("hst: need at least one point")
	ErrDuplicatePoints = errors.New("hst: predefined points must be distinct")
	ErrDegreeOverflow  = errors.New("hst: branching factor exceeds 255")
	ErrBadBeta         = errors.New("hst: beta must lie in [1/2, 1]")
	ErrBadPerm         = errors.New("hst: perm must be a permutation of the point indexes")
)

// Depth returns D, the level of the root. Leaf codes have length D.
func (t *Tree) Depth() int { return t.depth }

// Degree returns c, the branching factor of the complete tree.
func (t *Tree) Degree() int { return t.degree }

// NumPoints returns the number of predefined points (N in the paper).
func (t *Tree) NumPoints() int { return len(t.pts) }

// Points returns the predefined points. Callers must not modify the slice.
func (t *Tree) Points() []geo.Point { return t.pts }

// Point returns the predefined point with index i.
func (t *Tree) Point(i int) geo.Point { return t.pts[i] }

// Beta returns the radius factor β drawn during construction.
func (t *Tree) Beta() float64 { return t.beta }

// Scale returns the internal metric scale factor applied before carving
// (1 unless the minimum pairwise distance required rescaling; see Build).
func (t *Tree) Scale() float64 { return t.scale }

// Perm returns the pivot permutation used during construction (point
// indexes in carving priority order); nil for reconstructed trees.
func (t *Tree) Perm() []int { return t.perm }

// Root returns the real cluster tree, or nil when the tree was
// reconstructed from its published form.
func (t *Tree) Root() *Node { return t.root }

// CodeOf returns the leaf code of predefined point i.
func (t *Tree) CodeOf(i int) Code { return t.codes[i] }

// PointOf returns the predefined point index for a real leaf code.
// ok is false for fake leaves.
func (t *Tree) PointOf(c Code) (int, bool) {
	i, ok := t.byCode[c]
	return i, ok
}

// IsReal reports whether the code denotes a real (non-fake) leaf.
func (t *Tree) IsReal(c Code) bool {
	_, ok := t.byCode[c]
	return ok
}

// LCALevel returns the level of the least common ancestor of two leaves of
// the complete tree: D minus the length of their longest common digit
// prefix, and 0 when the codes are equal.
func (t *Tree) LCALevel(a, b Code) int {
	for j := 0; j < t.depth; j++ {
		if a[j] != b[j] {
			return t.depth - j
		}
	}
	return 0
}

// Dist returns the tree distance between two leaves: 2^(ℓ+2) − 4 where ℓ
// is their LCA level, and 0 for equal codes.
func (t *Tree) Dist(a, b Code) float64 {
	return LevelDist(t.LCALevel(a, b))
}

// LevelDist returns the tree distance between two leaves whose LCA is at
// the given level: 2^(ℓ+2) − 4, with LevelDist(0) = 0.
func LevelDist(level int) float64 {
	if level <= 0 {
		return 0
	}
	return math.Ldexp(1, level+2) - 4
}

// SiblingSetSize returns |L_i(x)|: the number of leaves of the complete
// tree whose LCA with a fixed leaf x is exactly at level i. It is 1 for
// i = 0 and (c−1)·c^(i−1) for i ≥ 1, independent of x.
func (t *Tree) SiblingSetSize(i int) float64 {
	if i == 0 {
		return 1
	}
	return float64(t.degree-1) * math.Pow(float64(t.degree), float64(i-1))
}

// TotalLeaves returns c^D, the leaf count of the complete tree, as a
// float64 (it routinely exceeds uint64 range).
func (t *Tree) TotalLeaves() float64 {
	return math.Pow(float64(t.degree), float64(t.depth))
}

// Ancestor returns the code prefix identifying the ancestor of leaf c at
// the given level (depth D−level from the root). Level 0 returns the full
// code; level D returns the empty prefix (the root).
func (t *Tree) Ancestor(c Code, level int) Code {
	return c[:t.depth-level]
}

// validCode reports whether c is a well-formed leaf code for this tree.
func (t *Tree) validCode(c Code) bool {
	if len(c) != t.depth {
		return false
	}
	for j := 0; j < len(c); j++ {
		if int(c[j]) >= t.degree {
			return false
		}
	}
	return true
}

// CheckCode returns an error when c is not a well-formed leaf code.
func (t *Tree) CheckCode(c Code) error {
	if !t.validCode(c) {
		return fmt.Errorf("hst: invalid leaf code %q for tree with D=%d c=%d", string(c), t.depth, t.degree)
	}
	return nil
}
