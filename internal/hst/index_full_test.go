package hst

import (
	"errors"
	"math"
	"testing"
	"unsafe"
)

// The arena structs are the per-worker memory bill at 10M-worker scale:
// any field added back (or padding reintroduced) is a deliberate decision,
// not an accident. flatNode packs five int32s (digit and sparse sibling
// links live in side slabs); itemSlot packs two (capacity is pooled in
// capExtra).
func TestArenaStructSizes(t *testing.T) {
	if got := unsafe.Sizeof(flatNode{}); got != 20 {
		t.Errorf("flatNode is %d bytes, want 20", got)
	}
	if got := unsafe.Sizeof(itemSlot{}); got != 8 {
		t.Errorf("itemSlot is %d bytes, want 8", got)
	}
}

// withArenaCap lowers the arena ceiling so overflow is reachable in a test.
func withArenaCap(t *testing.T, n int64) {
	t.Helper()
	old := maxArenaLen
	maxArenaLen = n
	t.Cleanup(func() { maxArenaLen = old })
}

// A dense index hits the child-slot arena first (every fresh path burns
// depth×degree kid slots). The refusal must be typed, must not corrupt the
// population already indexed, and freed slots must make room again.
func TestInsertFullDenseKidsArena(t *testing.T) {
	withArenaCap(t, 20)
	x := NewLeafIndexDegree(4, 4)
	a := Code([]byte{0, 0, 0, 0})
	if err := x.Insert(a, 1); err != nil {
		t.Fatalf("first insert: %v", err)
	}
	b := Code([]byte{1, 1, 1, 1})
	err := x.Insert(b, 2)
	if !errors.Is(err, ErrIndexFull) {
		t.Fatalf("insert at ceiling: got %v, want ErrIndexFull", err)
	}
	// The refused insert must have mutated nothing.
	if x.Len() != 1 || x.Units() != 1 {
		t.Fatalf("after refusal: Len=%d Units=%d, want 1/1", x.Len(), x.Units())
	}
	if id, lvl, ok := x.Nearest(a); !ok || id != 1 || lvl != 0 {
		t.Fatalf("worker 1 damaged by refused insert: id=%d lvl=%d ok=%v", id, lvl, ok)
	}
	if got := x.CountPrefix(Code([]byte{1})); got != 0 {
		t.Fatalf("refused branch counts %d items, want 0", got)
	}
	// Removal at the ceiling still works and its freed nodes/blocks make
	// the next insert fit without growing any slab.
	if !x.Remove(a, 1) {
		t.Fatal("remove at ceiling failed")
	}
	if err := x.Insert(b, 2); err != nil {
		t.Fatalf("insert after freeing: %v", err)
	}
	if id, _, ok := x.Nearest(b); !ok || id != 2 {
		t.Fatalf("worker 2 not indexed after freelist reuse: id=%d ok=%v", id, ok)
	}
}

// A sparse (unknown-degree) index hits the node arena first.
func TestInsertFullSparseNodeArena(t *testing.T) {
	withArenaCap(t, 5)
	x := NewLeafIndex(4)
	if err := x.Insert(Code([]byte{0, 0, 0, 0}), 1); err != nil {
		t.Fatalf("first insert: %v", err)
	}
	err := x.Insert(Code([]byte{1, 1, 1, 1}), 2)
	if !errors.Is(err, ErrIndexFull) {
		t.Fatalf("insert at ceiling: got %v, want ErrIndexFull", err)
	}
	if x.Len() != 1 {
		t.Fatalf("after refusal: Len=%d, want 1", x.Len())
	}
}

// A depth-0 index allocates no path nodes, so the item-slot arena is the
// binding ceiling.
func TestInsertFullItemArena(t *testing.T) {
	withArenaCap(t, 2)
	x := NewLeafIndex(0)
	for id := 0; id < 2; id++ {
		if err := x.Insert(Code(""), id); err != nil {
			t.Fatalf("insert %d: %v", id, err)
		}
	}
	err := x.Insert(Code(""), 2)
	if !errors.Is(err, ErrIndexFull) {
		t.Fatalf("insert at ceiling: got %v, want ErrIndexFull", err)
	}
	if !x.Remove(Code(""), 0) {
		t.Fatal("remove at ceiling failed")
	}
	if err := x.Insert(Code(""), 2); err != nil {
		t.Fatalf("insert after freeing a slot: %v", err)
	}
}

// The default ceiling is the full int32 range: normal populations must
// never see a refusal.
func TestArenaCapDefaultIsInt32Range(t *testing.T) {
	if maxArenaLen != int64(math.MaxInt32) {
		t.Fatalf("maxArenaLen = %d, want MaxInt32", maxArenaLen)
	}
}

// Capacity metadata is pooled: capacity-1 populations allocate no map, a
// multi-unit item's entry is dropped the moment it decays to one unit, and
// a freed slot can never leak units to the slot's next tenant.
func TestCapacityPooling(t *testing.T) {
	x := NewLeafIndexDegree(3, 2)
	leaf := Code([]byte{1, 0, 1})
	if err := x.Insert(leaf, 7); err != nil {
		t.Fatal(err)
	}
	if x.capExtra != nil {
		t.Fatalf("capacity-1 insert allocated the capacity pool: %v", x.capExtra)
	}
	if err := x.InsertCap(Code([]byte{0, 1, 0}), 8, 3); err != nil {
		t.Fatal(err)
	}
	if len(x.capExtra) != 1 {
		t.Fatalf("multi-unit item pooled %d entries, want 1", len(x.capExtra))
	}
	// Two pops decay 3 → 1: the pooled entry must be gone while the item
	// still serves its last unit.
	for i := 0; i < 2; i++ {
		if !x.Consume(Code([]byte{0, 1, 0}), 8) {
			t.Fatalf("consume %d failed", i)
		}
	}
	if len(x.capExtra) != 0 {
		t.Fatalf("decayed item still pooled: %v", x.capExtra)
	}
	if x.Units() != 2 || x.Len() != 2 {
		t.Fatalf("Units=%d Len=%d, want 2/2", x.Units(), x.Len())
	}
	// Withdraw a multi-unit item and reuse its slot: the tenant must not
	// inherit units.
	if !x.AddCap(Code([]byte{0, 1, 0}), 8, 4) {
		t.Fatal("addcap failed")
	}
	if units, ok := x.RemoveUnits(Code([]byte{0, 1, 0}), 8); !ok || units != 5 {
		t.Fatalf("removed units=%d ok=%v, want 5/true", units, ok)
	}
	if len(x.capExtra) != 0 {
		t.Fatalf("withdrawn item still pooled: %v", x.capExtra)
	}
	if err := x.Insert(Code([]byte{0, 1, 1}), 9); err != nil { // reuses the freed slot
		t.Fatal(err)
	}
	if x.Units() != 2 {
		t.Fatalf("slot reuse leaked capacity: Units=%d, want 2", x.Units())
	}
}

// ArenaBytes accounts the slabs the index actually reserves; it must grow
// with the population and shrink back when a fresh index replaces it (the
// figure the soak lane divides by the worker count).
func TestArenaBytes(t *testing.T) {
	x := NewLeafIndexDegree(6, 4)
	empty := x.ArenaBytes()
	if empty <= 0 {
		t.Fatalf("empty ArenaBytes = %d", empty)
	}
	for id := 0; id < 1000; id++ {
		code := make([]byte, 6)
		for j := range code {
			code[j] = byte((id >> (2 * j)) & 3)
		}
		if err := x.Insert(Code(code), id); err != nil {
			t.Fatal(err)
		}
	}
	if full := x.ArenaBytes(); full <= empty {
		t.Fatalf("ArenaBytes did not grow: %d -> %d", empty, full)
	}
}

// Reserve sized from a loaded index's ArenaLens must let an identical bulk
// load fill the slabs without a single reallocation — the epoch swap's
// defence against append-ladder garbage — while answering exactly like an
// unreserved build.
func TestReservePreventsRegrowth(t *testing.T) {
	codeAt := func(id int) Code {
		code := make([]byte, 6)
		for j := range code {
			code[j] = byte((id >> (2 * j)) & 3)
		}
		return Code(code)
	}
	a := NewLeafIndexDegree(6, 4)
	for id := 0; id < 1000; id++ {
		if err := a.Insert(codeAt(id), id); err != nil {
			t.Fatal(err)
		}
	}
	nodes, kids, items := a.ArenaLens()
	if nodes <= 1 || kids == 0 || items != 1000 {
		t.Fatalf("ArenaLens = %d/%d/%d, want populated slabs and 1000 items", nodes, kids, items)
	}
	b := NewLeafIndexDegree(6, 4)
	b.Reserve(nodes, kids, items)
	reserved := b.ArenaBytes()
	for id := 0; id < 1000; id++ {
		if err := b.Insert(codeAt(id), id); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.ArenaBytes(); got != reserved {
		t.Fatalf("reserved slabs regrew during the load: %d -> %d bytes", reserved, got)
	}
	for _, id := range []int{0, 1, 499, 999} {
		gotID, gotLvl, gotOK := b.Nearest(codeAt(id))
		wantID, wantLvl, wantOK := a.Nearest(codeAt(id))
		if gotID != wantID || gotLvl != wantLvl || gotOK != wantOK {
			t.Fatalf("probe %d: reserved index answers (%d,%d,%v), unreserved (%d,%d,%v)",
				id, gotID, gotLvl, gotOK, wantID, wantLvl, wantOK)
		}
	}
	// Reserving past the arena ceiling clamps instead of pre-allocating an
	// un-indexable slab; reserving below current capacity does nothing.
	withArenaCap(t, 64)
	c := NewLeafIndexDegree(2, 2)
	c.Reserve(1<<20, 1<<20, 1<<20)
	if got := c.ArenaBytes(); got > 64*(20+1+4+8)+64 {
		t.Fatalf("clamped Reserve still allocated %d bytes", got)
	}
	before := b.ArenaBytes()
	b.Reserve(1, 1, 1)
	if got := b.ArenaBytes(); got != before {
		t.Fatalf("no-op Reserve changed ArenaBytes: %d -> %d", before, got)
	}
}
