// Package wire pools the JSON codec scratch of the serving hot path. Every
// HTTP operation used to pay a fresh json.Marshal buffer on the way out and
// an io.ReadAll (or an undrained json.Decoder) on the way in; at serving
// rates that is the dominant steady-state allocation source of the wire
// tier. A pooled Buf carries a byte buffer, an encoder bound to it, and a
// reusable reader over its bytes, so a request/response round trip reuses
// one arena instead of allocating three.
//
// Contract: bytes obtained from a Buf (Bytes, Reader) are valid only until
// the Buf is reset or returned with Put. Anything that outlives the
// exchange — a replay-cache entry, an error message — must be copied out
// first.
package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
)

// Buf is pooled codec scratch. The zero value is not usable; obtain one
// with Get and return it with Put.
type Buf struct {
	buf bytes.Buffer
	enc *json.Encoder
	rd  bytes.Reader
	lr  io.LimitedReader
	dec *json.Decoder
	bad bool // decoder state contaminated: never returns to the pool
}

// maxPooledCap bounds what returns to the pool: one oversized exchange (a
// publication fetch, a mine response) must not pin its megabytes in a pool
// slot forever.
const maxPooledCap = 1 << 20

var pool = sync.Pool{New: func() any {
	b := &Buf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// Get returns an empty Buf from the pool.
func Get() *Buf {
	b := pool.Get().(*Buf)
	b.buf.Reset()
	return b
}

// Put returns a Buf to the pool. Oversized buffers are dropped instead so
// the pool's steady-state footprint stays bounded by typical exchanges.
func Put(b *Buf) {
	if b == nil || b.bad || b.buf.Cap() > maxPooledCap {
		return
	}
	b.rd.Reset(nil)
	b.lr.R = nil
	pool.Put(b)
}

// Reset empties the buffer for reuse within one exchange (encode the
// request, then read the response into the same scratch).
func (b *Buf) Reset() { b.buf.Reset() }

// Encode appends v's JSON encoding (with the encoder's trailing newline)
// to the buffer.
func (b *Buf) Encode(v any) error { return b.enc.Encode(v) }

// Bytes returns the buffered bytes; valid until the next Reset/Put.
func (b *Buf) Bytes() []byte { return b.buf.Bytes() }

// Len returns the buffered length.
func (b *Buf) Len() int { return b.buf.Len() }

// Reader returns a reusable reader positioned at the start of the buffered
// bytes; valid until the next Reset/Put.
func (b *Buf) Reader() *bytes.Reader {
	b.rd.Reset(b.buf.Bytes())
	return &b.rd
}

// ReadAll appends r's content to the buffer, keeping at most limit bytes,
// and always consumes r to EOF — the tail past the limit is discarded, not
// left unread. Draining matters as much as reading: trailing unread bytes
// on an HTTP body defeat net/http connection reuse, turning every request
// into a fresh TCP handshake. An over-limit body surfaces downstream as a
// parse error on the truncated bytes.
func (b *Buf) ReadAll(r io.Reader, limit int64) error {
	b.lr = io.LimitedReader{R: r, N: limit}
	if _, err := b.buf.ReadFrom(&b.lr); err != nil {
		return err
	}
	_, err := io.Copy(io.Discard, r)
	return err
}

// Unmarshal decodes the buffered bytes into v through a decoder bound to
// the Buf for its pooled lifetime: json.Unmarshal pays several allocations
// of per-call scratch, a bound Decoder pays them once per Buf. Decoder
// semantics apply (trailing non-JSON bytes after the value are tolerated),
// but such a tail — like any decode error — marks the Buf contaminated so
// leftover decoder state cannot bleed into a later exchange's decode.
func (b *Buf) Unmarshal(v any) error {
	if b.dec == nil {
		b.dec = json.NewDecoder(&b.rd)
	}
	b.rd.Reset(b.buf.Bytes())
	if err := b.dec.Decode(v); err != nil {
		b.bad = true
		return err
	}
	if b.dec.More() {
		b.bad = true
	}
	return nil
}

// DecodeAll reads r fully (see ReadAll) and unmarshals the kept bytes
// into v.
func (b *Buf) DecodeAll(r io.Reader, limit int64, v any) error {
	if err := b.ReadAll(r, limit); err != nil {
		return err
	}
	return b.Unmarshal(v)
}

// Clone returns a fresh copy of the buffered bytes, for callers that must
// retain them past the Buf's lifetime (replay caches).
func (b *Buf) Clone() []byte {
	return append([]byte(nil), b.buf.Bytes()...)
}
