package wire

import (
	"strings"
	"testing"
)

type msg struct {
	ID    string `json:"id"`
	Epoch int64  `json:"epoch,omitempty"`
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	b := Get()
	defer Put(b)
	in := msg{ID: "w-1", Epoch: 7}
	if err := b.Encode(in); err != nil {
		t.Fatal(err)
	}
	if got := string(b.Bytes()); got != `{"id":"w-1","epoch":7}`+"\n" {
		t.Fatalf("encoded %q", got)
	}
	var out msg
	if err := b.Unmarshal(&out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("roundtrip: %+v != %+v", out, in)
	}
	if b.bad {
		t.Fatal("clean roundtrip marked the Buf contaminated")
	}
}

func TestReadAllDrainsPastLimit(t *testing.T) {
	b := Get()
	defer Put(b)
	src := strings.NewReader("0123456789")
	if err := b.ReadAll(src, 4); err != nil {
		t.Fatal(err)
	}
	if got := string(b.Bytes()); got != "0123" {
		t.Fatalf("kept %q, want the first 4 bytes", got)
	}
	if src.Len() != 0 {
		t.Fatalf("%d bytes left unread: the tail must be drained for keep-alive", src.Len())
	}
}

func TestTrailingGarbageContaminates(t *testing.T) {
	b := Get()
	b.buf.WriteString(`{"id":"a"} GARBAGE`)
	var out msg
	// Decoder semantics: the value itself still decodes.
	if err := b.Unmarshal(&out); err != nil {
		t.Fatalf("value before garbage failed to decode: %v", err)
	}
	if out.ID != "a" {
		t.Fatalf("decoded %+v", out)
	}
	if !b.bad {
		t.Fatal("trailing garbage did not contaminate the Buf")
	}
	Put(b) // must drop, not pool — nothing to assert beyond not panicking

	b2 := Get()
	defer Put(b2)
	b2.buf.WriteString("{nope")
	if err := b2.Unmarshal(&out); err == nil {
		t.Fatal("malformed payload decoded")
	}
	if !b2.bad {
		t.Fatal("decode error did not contaminate the Buf")
	}
}

func TestWhitespaceTailStaysClean(t *testing.T) {
	b := Get()
	defer Put(b)
	for i := 0; i < 3; i++ {
		b.Reset()
		b.buf.WriteString(`{"id":"a","epoch":1}` + " \t\r\n")
		var out msg
		if err := b.Unmarshal(&out); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if b.bad {
			t.Fatalf("iter %d: whitespace tail contaminated the Buf", i)
		}
	}
}

func TestCloneOutlivesReset(t *testing.T) {
	b := Get()
	defer Put(b)
	b.buf.WriteString("original")
	c := b.Clone()
	b.Reset()
	b.buf.WriteString("overwritten")
	if string(c) != "original" {
		t.Fatalf("clone mutated to %q", c)
	}
}

func TestOversizedBufNotPooled(t *testing.T) {
	b := Get()
	b.buf.Grow(maxPooledCap + 1)
	Put(b) // must drop silently
	if got := Get(); got == b {
		// Possible only if the oversized Buf was pooled; another goroutine's
		// Buf colliding here cannot happen in a serial test.
		t.Fatal("oversized Buf returned to the pool")
	}
}

func TestReaderTracksBuffer(t *testing.T) {
	b := Get()
	defer Put(b)
	b.buf.WriteString("abc")
	r := b.Reader()
	got := make([]byte, 3)
	if n, _ := r.Read(got); n != 3 || string(got) != "abc" {
		t.Fatalf("read %q (%d bytes)", got[:n], n)
	}
}
