package platform

import (
	"errors"
	"fmt"

	"github.com/pombm/pombm/internal/engine"
)

// The structured error taxonomy of the versioned wire protocol. Every
// refusal a server (or coordinator) emits carries an *Error alongside the
// legacy Reason string: machine-readable code, the epoch the refusing side
// was serving where relevant, and whether retrying can help. Clients match
// with errors.Is against the sentinel errors below instead of string
// matching on Reason.

// Error codes. The set is closed on the server side but clients must
// tolerate unknown codes (treat them as non-retryable failures).
const (
	// CodeStaleEpoch: the request was built under a rotated-away
	// publication. Retryable after re-fetching the publication.
	CodeStaleEpoch = "stale_epoch"
	// CodeBudgetExhausted: the worker's lifetime ε budget cannot afford
	// another fresh report.
	CodeBudgetExhausted = "budget_exhausted"
	// CodeParked: the worker is terminally parked (its budget ran out).
	CodeParked = "parked"
	// CodeNoWorkers: no worker is available for the task.
	CodeNoWorkers = "no_workers"
	// CodeBadRequest: malformed request (bad code, unknown worker, invalid
	// capacity, undecodable body).
	CodeBadRequest = "bad_request"
	// CodeConflict: the request is valid but the server's state refuses it
	// (duplicate registration, worker not assigned, nothing staged).
	CodeConflict = "conflict"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeUnsupportedMedia: request body is not application/json.
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeUnavailable: a backend (or the transport to it) failed; the
	// request may have had no effect. Retryable.
	CodeUnavailable = "unavailable"
	// CodeInternal: the server failed in a way retrying will not fix.
	CodeInternal = "internal"
)

// Sentinel errors clients match with errors.Is.
var (
	// ErrStaleEpoch reports a request refused as built under a rotated-away
	// epoch.
	ErrStaleEpoch = errors.New("platform: stale epoch")
	// ErrBudgetExhausted reports a worker whose lifetime ε budget cannot
	// afford another fresh report.
	ErrBudgetExhausted = errors.New("platform: lifetime budget exhausted")
	// ErrParked reports a worker terminally parked. A parked worker's
	// budget is by definition exhausted, so a parked Error also matches
	// ErrBudgetExhausted.
	ErrParked = errors.New("platform: worker parked")
	// ErrNoWorkers reports a task refused because no worker is available.
	ErrNoWorkers = errors.New("platform: no available workers")
	// ErrUnavailable reports a backend or transport failure.
	ErrUnavailable = errors.New("platform: backend unavailable")
)

// Error is the structured wire error: it travels as JSON inside response
// envelopes (and as the body of non-200 HTTP responses) and implements
// error, so a decoded response surfaces it directly.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message,omitempty"`
	// Epoch is the epoch the refusing side was serving, when relevant
	// (always set for stale_epoch).
	Epoch int64 `json:"epoch,omitempty"`
	// Retryable reports whether the same request can succeed later —
	// possibly after repair the code implies (stale_epoch: re-fetch the
	// publication first).
	Retryable bool `json:"retryable,omitempty"`
}

func (e *Error) Error() string {
	if e == nil {
		return "<nil>"
	}
	if e.Message != "" {
		return e.Message
	}
	return "platform: " + e.Code
}

// Is maps wire codes onto the package sentinels for errors.Is.
func (e *Error) Is(target error) bool {
	if e == nil {
		return false
	}
	switch target {
	case ErrStaleEpoch:
		return e.Code == CodeStaleEpoch
	case ErrParked:
		return e.Code == CodeParked
	case ErrBudgetExhausted:
		// Parking is budget exhaustion made permanent.
		return e.Code == CodeBudgetExhausted || e.Code == CodeParked
	case ErrNoWorkers:
		return e.Code == CodeNoWorkers
	case ErrUnavailable:
		return e.Code == CodeUnavailable
	}
	return false
}

// staleEpochError pairs staleEpochReason with its structured form.
func staleEpochError(got, cur int64) *Error {
	return &Error{Code: CodeStaleEpoch, Message: staleEpochReason(got, cur), Epoch: cur, Retryable: true}
}

// parkedError pairs parkedReason with its structured form.
func parkedError(workerID string) *Error {
	return &Error{Code: CodeParked, Message: parkedReason(workerID)}
}

// noWorkersError is the structured refusal for an unservable task.
func noWorkersError() *Error {
	return &Error{Code: CodeNoWorkers, Message: "platform: no available workers", Retryable: true}
}

// unavailableError wraps a transport or backend failure.
func unavailableError(err error) *Error {
	return &Error{Code: CodeUnavailable, Message: err.Error(), Retryable: true}
}

// badRequestError is the structured refusal for a malformed request.
func badRequestError(msg string) *Error {
	return &Error{Code: CodeBadRequest, Message: msg}
}

// conflictError is the structured refusal for a stateful conflict.
func conflictError(msg string) *Error {
	return &Error{Code: CodeConflict, Message: msg}
}

// AsError extracts a structured *Error from any error (unwrapping), or
// wraps a plain error by classification so callers always have one. Typed
// engine staleness maps to stale_epoch.
func AsError(err error, epoch int64) *Error {
	if err == nil {
		return nil
	}
	var pe *Error
	if errors.As(err, &pe) {
		return pe
	}
	if errors.Is(err, ErrStaleEpoch) || errors.Is(err, engine.ErrStaleEpoch) {
		return &Error{Code: CodeStaleEpoch, Message: err.Error(), Epoch: epoch, Retryable: true}
	}
	return &Error{Code: CodeBadRequest, Message: err.Error()}
}

var _ error = (*Error)(nil)

// errorf builds an internal-code Error.
func internalError(format string, args ...any) *Error {
	return &Error{Code: CodeInternal, Message: fmt.Sprintf(format, args...)}
}
