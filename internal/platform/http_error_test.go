package platform

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPMethodAndBodyErrors(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// Wrong method on the publication endpoint.
	resp, err := http.Post(ts.URL+PathPublication, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST publication = %d, want 405", resp.StatusCode)
	}

	// Wrong method on a POST endpoint.
	resp, err = http.Get(ts.URL + PathRegister)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET register = %d, want 405", resp.StatusCode)
	}

	// Malformed JSON bodies on every POST endpoint.
	for _, path := range []string{PathRegister, PathReregister, PathTask} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad JSON on %s = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHTTPClientSurfacesServerErrors(t *testing.T) {
	// A server that always 500s: the client must fold the failure into the
	// response structs rather than panic.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathPublication {
			// Valid publication so NewClient succeeds.
			s := newTestServer(t)
			Handler(s).ServeHTTP(w, r)
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp := client.Register(RegisterRequest{WorkerID: "w", Code: []byte{0}}); resp.OK {
		t.Error("500 register reported OK")
	} else if !strings.Contains(resp.Reason, "500") {
		t.Errorf("reason %q does not surface the status", resp.Reason)
	}
	if resp := client.Submit(TaskRequest{TaskID: "t", Code: []byte{0}}); resp.Assigned {
		t.Error("500 submit reported assigned")
	}
	if resp := client.Reregister(ReregisterRequest{WorkerID: "w", Code: []byte{0}}); resp.OK {
		t.Error("500 reregister reported OK")
	}
	if _, err := client.Stats(); err == nil {
		t.Error("500 stats reported no error")
	}
}

func TestHTTPClientRejectsNonJSONPublication(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<html>not json</html>"))
	}))
	defer ts.Close()
	if _, err := NewClient(ts.URL); err == nil {
		t.Error("HTML publication accepted")
	}
}

func TestHTTPClientRejectsEmptyPublication(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	if _, err := NewClient(ts.URL); err == nil {
		t.Error("publication without a tree accepted")
	}
}
