package platform

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/wire"
)

// Wire-path body bounds: requests are small control messages, responses can
// carry a publication or a batch result.
const (
	maxRequestBytes  = 1 << 20
	maxResponseBytes = 64 << 20
)

// HTTP endpoint paths.
const (
	PathPublication   = "/v1/publication"
	PathRegister      = "/v1/register"
	PathReregister    = "/v1/reregister"
	PathRelease       = "/v1/release"
	PathWithdraw      = "/v1/withdraw"
	PathTask          = "/v1/task"
	PathTaskBatch     = "/v1/tasks"
	PathStats         = "/v1/stats"
	PathRotatePrepare = "/v1/rotate/prepare"
	PathRotate        = "/v1/rotate"
)

// Handler exposes a Server over JSON/HTTP.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPublication, func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		pub := s.Publication() // locked read: the tree and epoch rotate
		writeJSON(w, wirePublication{
			Tree:    pub.Tree,
			MinX:    pub.Region.MinX,
			MinY:    pub.Region.MinY,
			MaxX:    pub.Region.MaxX,
			MaxY:    pub.Region.MaxY,
			Cols:    pub.Cols,
			Rows:    pub.Rows,
			Epsilon: pub.Epsilon,
			Epoch:   pub.Epoch,
		})
	})
	mux.HandleFunc(PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Register(req))
	})
	mux.HandleFunc(PathReregister, func(w http.ResponseWriter, r *http.Request) {
		var req ReregisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Reregister(req))
	})
	mux.HandleFunc(PathRelease, func(w http.ResponseWriter, r *http.Request) {
		var req ReleaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Release(req))
	})
	mux.HandleFunc(PathWithdraw, func(w http.ResponseWriter, r *http.Request) {
		var req WithdrawRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Withdraw(req))
	})
	mux.HandleFunc(PathTask, func(w http.ResponseWriter, r *http.Request) {
		var req TaskRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Submit(req))
	})
	mux.HandleFunc(PathTaskBatch, func(w http.ResponseWriter, r *http.Request) {
		var req TaskBatchRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.SubmitBatch(req))
	})
	mux.HandleFunc(PathRotatePrepare, func(w http.ResponseWriter, r *http.Request) {
		var req PrepareRotateRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.PrepareRotate(req))
	})
	mux.HandleFunc(PathRotate, func(w http.ResponseWriter, r *http.Request) {
		var req RotateRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Rotate(req))
	})
	mux.HandleFunc(PathStats, func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		writeJSON(w, s.Stats())
	})
	return mux
}

// wirePublication flattens Publication for JSON (geo.Rect has no tags and
// the tree marshals through its Published form).
type wirePublication struct {
	Tree    *hst.Tree `json:"tree"`
	MinX    float64   `json:"min_x"`
	MinY    float64   `json:"min_y"`
	MaxX    float64   `json:"max_x"`
	MaxY    float64   `json:"max_y"`
	Cols    int       `json:"cols"`
	Rows    int       `json:"rows"`
	Epsilon float64   `json:"epsilon"`
	Epoch   int64     `json:"epoch,omitempty"`
}

// Client is an HTTP Backend: agents on other machines talk to the server
// through it. It is safe for concurrent use: the cached publication is
// re-fetched by Rotate, so reads and that refresh synchronise on a lock.
type Client struct {
	BaseURL string
	HTTP    *http.Client

	pubMu sync.RWMutex
	pub   *Publication
}

// NewTransport returns an http.Transport tuned for the serving path:
// keep-alives on, enough idle connections per host that a fan-in of
// concurrent clients (or a coordinator's fan-out to one node) never churns
// through fresh TCP handshakes, and bounded dial/TLS timeouts so a dead
// peer fails fast instead of hanging a request slot.
func NewTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          512,
		MaxIdleConnsPerHost:   64,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// servingClient is the process-wide default HTTP client: one shared
// connection pool, so many Clients against the same server reuse the same
// keep-alive connections instead of each growing their own.
var servingClient = &http.Client{Transport: NewTransport()}

// NewClient returns a client for a server base URL (e.g.
// "http://localhost:8080"). It fetches and caches the publication eagerly
// so construction fails fast on connectivity problems.
func NewClient(baseURL string) (*Client, error) {
	c := &Client{BaseURL: baseURL, HTTP: servingClient}
	var wire wirePublication
	if err := c.get(PathPublication, &wire); err != nil {
		return nil, err
	}
	if wire.Tree == nil {
		return nil, fmt.Errorf("platform: server published no tree")
	}
	c.pub = pubFromWire(&wire)
	return c, nil
}

// pubFromWire folds the flattened wire form back into a Publication — the
// one conversion site both the constructor and post-rotation re-fetch use.
func pubFromWire(wire *wirePublication) *Publication {
	return &Publication{
		Tree:    wire.Tree,
		Region:  geo.NewRect(geo.Pt(wire.MinX, wire.MinY), geo.Pt(wire.MaxX, wire.MaxY)),
		Cols:    wire.Cols,
		Rows:    wire.Rows,
		Epsilon: wire.Epsilon,
		Epoch:   wire.Epoch,
	}
}

// Publication returns the cached publication.
func (c *Client) Publication() Publication {
	c.pubMu.RLock()
	defer c.pubMu.RUnlock()
	return *c.pub
}

// clientError folds a transport or server failure into the structured
// taxonomy: a decoded wire *Error passes through typed, anything else
// (connection refused, timeout, undecodable body) becomes unavailable.
func clientError(err error) *Error {
	var pe *Error
	if errors.As(err, &pe) {
		return pe
	}
	return unavailableError(err)
}

// Register implements Backend over HTTP.
func (c *Client) Register(req RegisterRequest) RegisterResponse {
	var resp RegisterResponse
	if err := c.post(PathRegister, req, &resp); err != nil {
		e := clientError(err)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Reregister updates a worker's reported leaf over HTTP.
func (c *Client) Reregister(req ReregisterRequest) RegisterResponse {
	var resp RegisterResponse
	if err := c.post(PathReregister, req, &resp); err != nil {
		e := clientError(err)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Release returns an assigned worker to the pool over HTTP.
func (c *Client) Release(req ReleaseRequest) RegisterResponse {
	var resp RegisterResponse
	if err := c.post(PathRelease, req, &resp); err != nil {
		e := clientError(err)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Withdraw takes a worker offline over HTTP.
func (c *Client) Withdraw(req WithdrawRequest) RegisterResponse {
	var resp RegisterResponse
	if err := c.post(PathWithdraw, req, &resp); err != nil {
		e := clientError(err)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Submit implements Backend over HTTP.
func (c *Client) Submit(req TaskRequest) TaskResponse {
	var resp TaskResponse
	if err := c.post(PathTask, req, &resp); err != nil {
		e := clientError(err)
		return TaskResponse{Assigned: false, Reason: e.Message, Err: e}
	}
	return resp
}

// SubmitBatch submits a task batch over HTTP.
func (c *Client) SubmitBatch(req TaskBatchRequest) TaskBatchResponse {
	var resp TaskBatchResponse
	if err := c.post(PathTaskBatch, req, &resp); err != nil {
		e := clientError(err)
		out := TaskBatchResponse{Results: make([]TaskResponse, len(req.Tasks))}
		for i := range out.Results {
			out.Results[i] = TaskResponse{Assigned: false, Reason: e.Message, Err: e}
		}
		return out
	}
	return resp
}

// PrepareRotate stages the next epoch over HTTP and returns the staged
// tree for client-side re-obfuscation. Operator-facing: a deployment
// would protect the rotation endpoints behind its admin plane.
func (c *Client) PrepareRotate(req PrepareRotateRequest) PrepareRotateResponse {
	var resp PrepareRotateResponse
	if err := c.post(PathRotatePrepare, req, &resp); err != nil {
		e := clientError(err)
		return PrepareRotateResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Rotate commits a staged rotation over HTTP with the collected fresh
// reports. On success the client re-fetches and re-caches the publication
// so subsequent agent construction sees the new epoch; if that re-fetch
// fails the commit still happened server-side, so OK stays true and the
// failure is surfaced in Reason — the caller must re-fetch before building
// agents, or they will be refused as stale.
func (c *Client) Rotate(req RotateRequest) RotateResponse {
	var resp RotateResponse
	if err := c.post(PathRotate, req, &resp); err != nil {
		e := clientError(err)
		return RotateResponse{OK: false, Reason: e.Message, Err: e}
	}
	if resp.OK {
		var wire wirePublication
		switch err := c.get(PathPublication, &wire); {
		case err != nil:
			resp.Reason = fmt.Sprintf("rotation committed, but publication re-fetch failed: %v", err)
		case wire.Tree == nil:
			resp.Reason = "rotation committed, but the re-fetched publication has no tree"
		default:
			c.pubMu.Lock()
			c.pub = pubFromWire(&wire)
			c.pubMu.Unlock()
		}
	}
	return resp
}

// Stats fetches the server counters.
func (c *Client) Stats() (StatsResponse, error) {
	var resp StatsResponse
	err := c.get(PathStats, &resp)
	return resp, err
}

var _ Backend = (*Client)(nil)
var _ API = (*Client)(nil)

func (c *Client) get(path string, out any) error {
	resp, err := c.HTTP.Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("platform: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeResponse(path, resp, out)
}

func (c *Client) post(path string, in, out any) error {
	cb := wire.Get()
	defer wire.Put(cb)
	if err := cb.Encode(in); err != nil {
		return fmt.Errorf("platform: encode %s: %w", path, err)
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+path, cb.Reader())
	if err != nil {
		return fmt.Errorf("platform: POST %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	// The request bytes are pooled scratch that is reclaimed when this call
	// returns; nothing (redirect replay, transparent retry) may re-read them
	// later.
	req.GetBody = nil
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("platform: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeResponse(path, resp, out)
}

func decodeResponse(path string, resp *http.Response, out any) error {
	cb := wire.Get()
	defer wire.Put(cb)
	// Read the body to EOF into pooled scratch before decoding: a
	// json.Decoder stops at the end of the value and leaves the trailing
	// newline unread, which defeats net/http keep-alive reuse.
	if err := cb.ReadAll(resp.Body, maxResponseBytes); err != nil {
		return fmt.Errorf("platform: read %s: %w", path, err)
	}
	body := bytes.TrimSpace(cb.Bytes())
	if resp.StatusCode != http.StatusOK {
		if len(body) > 4<<10 {
			body = body[:4<<10]
		}
		// Error statuses carry a structured Error body; surface it typed so
		// callers can errors.Is against the sentinels. Non-JSON bodies (a
		// proxy's error page) fall back to a plain error.
		var we Error
		if json.Unmarshal(body, &we) == nil && we.Code != "" {
			return &we
		}
		return fmt.Errorf("platform: %s returned %s: %s", path, resp.Status, body)
	}
	if err := cb.Unmarshal(out); err != nil {
		return fmt.Errorf("platform: decode %s: %w", path, err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	cb := wire.Get()
	defer wire.Put(cb)
	// Encode into pooled scratch first: a failure surfaces as a clean 500
	// instead of a half-written 200, and the explicit Content-Length lets
	// the client see the body end without a chunked trailer.
	if err := cb.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(cb.Len()))
	w.Write(cb.Bytes())
}

// writeError answers with an HTTP error status whose body is the structured
// Error as JSON — the transport-level half of the error taxonomy (refusals
// with well-formed requests ride inside 200 response envelopes instead).
func writeError(w http.ResponseWriter, status int, e *Error) {
	cb := wire.Get()
	defer wire.Put(cb)
	// Same encode-first discipline as writeJSON: an Error that will not
	// encode degrades to a plain-text 500 rather than a silently empty body.
	if err := cb.Encode(e); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(cb.Len()))
	w.WriteHeader(status)
	w.Write(cb.Bytes())
}

// requireGet guards a read-only endpoint: non-GET methods are answered with
// 405 and a structured Error body.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, &Error{
			Code:    CodeMethodNotAllowed,
			Message: fmt.Sprintf("platform: %s requires GET, got %s", r.URL.Path, r.Method),
		})
		return false
	}
	return true
}

// checkContentType accepts application/json (with any parameters) and — for
// pre-taxonomy clients — an absent Content-Type; anything else is refused.
func checkContentType(r *http.Request) *Error {
	ct := r.Header.Get("Content-Type")
	if ct == "" || ct == "application/json" {
		// Fast path for the exact type every client in this repo sends:
		// mime.ParseMediaType allocates its parameter map even for a bare
		// type, which is measurable at serving rates.
		return nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || !strings.EqualFold(mt, "application/json") {
		return &Error{
			Code:    CodeUnsupportedMedia,
			Message: fmt.Sprintf("platform: %s requires application/json, got %q", r.URL.Path, ct),
		}
	}
	return nil
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, &Error{
			Code:    CodeMethodNotAllowed,
			Message: fmt.Sprintf("platform: %s requires POST, got %s", r.URL.Path, r.Method),
		})
		return false
	}
	if e := checkContentType(r); e != nil {
		writeError(w, http.StatusUnsupportedMediaType, e)
		return false
	}
	cb := wire.Get()
	defer wire.Put(cb)
	// DecodeAll drains the body even past the size cap, so a keep-alive
	// connection is left clean for the next request on it.
	if err := cb.DecodeAll(r.Body, maxRequestBytes, v); err != nil {
		writeError(w, http.StatusBadRequest, badRequestError("platform: bad request: "+err.Error()))
		return false
	}
	return true
}
