package platform

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
)

// HTTP endpoint paths.
const (
	PathPublication   = "/v1/publication"
	PathRegister      = "/v1/register"
	PathReregister    = "/v1/reregister"
	PathRelease       = "/v1/release"
	PathWithdraw      = "/v1/withdraw"
	PathTask          = "/v1/task"
	PathTaskBatch     = "/v1/tasks"
	PathStats         = "/v1/stats"
	PathRotatePrepare = "/v1/rotate/prepare"
	PathRotate        = "/v1/rotate"
)

// Handler exposes a Server over JSON/HTTP.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPublication, func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		pub := s.Publication() // locked read: the tree and epoch rotate
		writeJSON(w, wirePublication{
			Tree:    pub.Tree,
			MinX:    pub.Region.MinX,
			MinY:    pub.Region.MinY,
			MaxX:    pub.Region.MaxX,
			MaxY:    pub.Region.MaxY,
			Cols:    pub.Cols,
			Rows:    pub.Rows,
			Epsilon: pub.Epsilon,
			Epoch:   pub.Epoch,
		})
	})
	mux.HandleFunc(PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Register(req))
	})
	mux.HandleFunc(PathReregister, func(w http.ResponseWriter, r *http.Request) {
		var req ReregisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Reregister(req))
	})
	mux.HandleFunc(PathRelease, func(w http.ResponseWriter, r *http.Request) {
		var req ReleaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Release(req))
	})
	mux.HandleFunc(PathWithdraw, func(w http.ResponseWriter, r *http.Request) {
		var req WithdrawRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Withdraw(req))
	})
	mux.HandleFunc(PathTask, func(w http.ResponseWriter, r *http.Request) {
		var req TaskRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Submit(req))
	})
	mux.HandleFunc(PathTaskBatch, func(w http.ResponseWriter, r *http.Request) {
		var req TaskBatchRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.SubmitBatch(req))
	})
	mux.HandleFunc(PathRotatePrepare, func(w http.ResponseWriter, r *http.Request) {
		var req PrepareRotateRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.PrepareRotate(req))
	})
	mux.HandleFunc(PathRotate, func(w http.ResponseWriter, r *http.Request) {
		var req RotateRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, s.Rotate(req))
	})
	mux.HandleFunc(PathStats, func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		writeJSON(w, s.Stats())
	})
	return mux
}

// wirePublication flattens Publication for JSON (geo.Rect has no tags and
// the tree marshals through its Published form).
type wirePublication struct {
	Tree    *hst.Tree `json:"tree"`
	MinX    float64   `json:"min_x"`
	MinY    float64   `json:"min_y"`
	MaxX    float64   `json:"max_x"`
	MaxY    float64   `json:"max_y"`
	Cols    int       `json:"cols"`
	Rows    int       `json:"rows"`
	Epsilon float64   `json:"epsilon"`
	Epoch   int64     `json:"epoch,omitempty"`
}

// Client is an HTTP Backend: agents on other machines talk to the server
// through it. It is safe for concurrent use: the cached publication is
// re-fetched by Rotate, so reads and that refresh synchronise on a lock.
type Client struct {
	BaseURL string
	HTTP    *http.Client

	pubMu sync.RWMutex
	pub   *Publication
}

// NewClient returns a client for a server base URL (e.g.
// "http://localhost:8080"). It fetches and caches the publication eagerly
// so construction fails fast on connectivity problems.
func NewClient(baseURL string) (*Client, error) {
	c := &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
	var wire wirePublication
	if err := c.get(PathPublication, &wire); err != nil {
		return nil, err
	}
	if wire.Tree == nil {
		return nil, fmt.Errorf("platform: server published no tree")
	}
	c.pub = pubFromWire(&wire)
	return c, nil
}

// pubFromWire folds the flattened wire form back into a Publication — the
// one conversion site both the constructor and post-rotation re-fetch use.
func pubFromWire(wire *wirePublication) *Publication {
	return &Publication{
		Tree:    wire.Tree,
		Region:  geo.NewRect(geo.Pt(wire.MinX, wire.MinY), geo.Pt(wire.MaxX, wire.MaxY)),
		Cols:    wire.Cols,
		Rows:    wire.Rows,
		Epsilon: wire.Epsilon,
		Epoch:   wire.Epoch,
	}
}

// Publication returns the cached publication.
func (c *Client) Publication() Publication {
	c.pubMu.RLock()
	defer c.pubMu.RUnlock()
	return *c.pub
}

// clientError folds a transport or server failure into the structured
// taxonomy: a decoded wire *Error passes through typed, anything else
// (connection refused, timeout, undecodable body) becomes unavailable.
func clientError(err error) *Error {
	var pe *Error
	if errors.As(err, &pe) {
		return pe
	}
	return unavailableError(err)
}

// Register implements Backend over HTTP.
func (c *Client) Register(req RegisterRequest) RegisterResponse {
	var resp RegisterResponse
	if err := c.post(PathRegister, req, &resp); err != nil {
		e := clientError(err)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Reregister updates a worker's reported leaf over HTTP.
func (c *Client) Reregister(req ReregisterRequest) RegisterResponse {
	var resp RegisterResponse
	if err := c.post(PathReregister, req, &resp); err != nil {
		e := clientError(err)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Release returns an assigned worker to the pool over HTTP.
func (c *Client) Release(req ReleaseRequest) RegisterResponse {
	var resp RegisterResponse
	if err := c.post(PathRelease, req, &resp); err != nil {
		e := clientError(err)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Withdraw takes a worker offline over HTTP.
func (c *Client) Withdraw(req WithdrawRequest) RegisterResponse {
	var resp RegisterResponse
	if err := c.post(PathWithdraw, req, &resp); err != nil {
		e := clientError(err)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Submit implements Backend over HTTP.
func (c *Client) Submit(req TaskRequest) TaskResponse {
	var resp TaskResponse
	if err := c.post(PathTask, req, &resp); err != nil {
		e := clientError(err)
		return TaskResponse{Assigned: false, Reason: e.Message, Err: e}
	}
	return resp
}

// SubmitBatch submits a task batch over HTTP.
func (c *Client) SubmitBatch(req TaskBatchRequest) TaskBatchResponse {
	var resp TaskBatchResponse
	if err := c.post(PathTaskBatch, req, &resp); err != nil {
		e := clientError(err)
		out := TaskBatchResponse{Results: make([]TaskResponse, len(req.Tasks))}
		for i := range out.Results {
			out.Results[i] = TaskResponse{Assigned: false, Reason: e.Message, Err: e}
		}
		return out
	}
	return resp
}

// PrepareRotate stages the next epoch over HTTP and returns the staged
// tree for client-side re-obfuscation. Operator-facing: a deployment
// would protect the rotation endpoints behind its admin plane.
func (c *Client) PrepareRotate(req PrepareRotateRequest) PrepareRotateResponse {
	var resp PrepareRotateResponse
	if err := c.post(PathRotatePrepare, req, &resp); err != nil {
		e := clientError(err)
		return PrepareRotateResponse{OK: false, Reason: e.Message, Err: e}
	}
	return resp
}

// Rotate commits a staged rotation over HTTP with the collected fresh
// reports. On success the client re-fetches and re-caches the publication
// so subsequent agent construction sees the new epoch; if that re-fetch
// fails the commit still happened server-side, so OK stays true and the
// failure is surfaced in Reason — the caller must re-fetch before building
// agents, or they will be refused as stale.
func (c *Client) Rotate(req RotateRequest) RotateResponse {
	var resp RotateResponse
	if err := c.post(PathRotate, req, &resp); err != nil {
		e := clientError(err)
		return RotateResponse{OK: false, Reason: e.Message, Err: e}
	}
	if resp.OK {
		var wire wirePublication
		switch err := c.get(PathPublication, &wire); {
		case err != nil:
			resp.Reason = fmt.Sprintf("rotation committed, but publication re-fetch failed: %v", err)
		case wire.Tree == nil:
			resp.Reason = "rotation committed, but the re-fetched publication has no tree"
		default:
			c.pubMu.Lock()
			c.pub = pubFromWire(&wire)
			c.pubMu.Unlock()
		}
	}
	return resp
}

// Stats fetches the server counters.
func (c *Client) Stats() (StatsResponse, error) {
	var resp StatsResponse
	err := c.get(PathStats, &resp)
	return resp, err
}

var _ Backend = (*Client)(nil)
var _ API = (*Client)(nil)

func (c *Client) get(path string, out any) error {
	resp, err := c.HTTP.Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("platform: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeResponse(path, resp, out)
}

func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("platform: encode %s: %w", path, err)
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("platform: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeResponse(path, resp, out)
}

func decodeResponse(path string, resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		// Error statuses carry a structured Error body; surface it typed so
		// callers can errors.Is against the sentinels. Non-JSON bodies (a
		// proxy's error page) fall back to a plain error.
		var we Error
		if json.Unmarshal(bytes.TrimSpace(msg), &we) == nil && we.Code != "" {
			return &we
		}
		return fmt.Errorf("platform: %s returned %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("platform: decode %s: %w", path, err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError answers with an HTTP error status whose body is the structured
// Error as JSON — the transport-level half of the error taxonomy (refusals
// with well-formed requests ride inside 200 response envelopes instead).
func writeError(w http.ResponseWriter, status int, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(e)
}

// requireGet guards a read-only endpoint: non-GET methods are answered with
// 405 and a structured Error body.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, &Error{
			Code:    CodeMethodNotAllowed,
			Message: fmt.Sprintf("platform: %s requires GET, got %s", r.URL.Path, r.Method),
		})
		return false
	}
	return true
}

// checkContentType accepts application/json (with any parameters) and — for
// pre-taxonomy clients — an absent Content-Type; anything else is refused.
func checkContentType(r *http.Request) *Error {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || !strings.EqualFold(mt, "application/json") {
		return &Error{
			Code:    CodeUnsupportedMedia,
			Message: fmt.Sprintf("platform: %s requires application/json, got %q", r.URL.Path, ct),
		}
	}
	return nil
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, &Error{
			Code:    CodeMethodNotAllowed,
			Message: fmt.Sprintf("platform: %s requires POST, got %s", r.URL.Path, r.Method),
		})
		return false
	}
	if e := checkContentType(r); e != nil {
		writeError(w, http.StatusUnsupportedMediaType, e)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, badRequestError("platform: bad request: "+err.Error()))
		return false
	}
	return true
}
