package platform

import (
	"fmt"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// TestMatchLevelStats checks that the server histograms assignment LCA
// levels identically on the one-by-one and batch submission paths.
func TestMatchLevelStats(t *testing.T) {
	single := newTestServer(t)
	batch, err := NewServer(single.Publication().Region, single.Publication().Cols,
		single.Publication().Rows, single.Publication().Epsilon, 42)
	if err != nil {
		t.Fatal(err)
	}

	o, err := NewObfuscator(single.Publication(), 7)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	var workers []RegisterRequest
	for i := 0; i < 40; i++ {
		code := []byte(o.Obfuscate(geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))))
		workers = append(workers, RegisterRequest{WorkerID: fmt.Sprintf("w%d", i), Code: code})
	}
	var tasks []TaskRequest
	for i := 0; i < 50; i++ {
		code := []byte(o.Obfuscate(geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))))
		tasks = append(tasks, TaskRequest{TaskID: fmt.Sprintf("t%d", i), Code: code})
	}

	for _, w := range workers {
		if r := single.Register(w); !r.OK {
			t.Fatal(r.Reason)
		}
		if r := batch.Register(w); !r.OK {
			t.Fatal(r.Reason)
		}
	}
	for _, task := range tasks {
		single.Submit(task)
	}
	batch.SubmitBatch(TaskBatchRequest{Tasks: tasks})

	ss, bs := single.Stats(), batch.Stats()
	if ss.AssignedTasks == 0 {
		t.Fatal("no assignments made")
	}
	if ss.AssignedTasks != bs.AssignedTasks || ss.RejectedTasks != bs.RejectedTasks {
		t.Fatalf("batch diverged: single %+v, batch %+v", ss, bs)
	}
	if len(ss.MatchLevelCounts) != single.Publication().Tree.Depth()+1 {
		t.Fatalf("MatchLevelCounts has %d buckets, want D+1 = %d",
			len(ss.MatchLevelCounts), single.Publication().Tree.Depth()+1)
	}
	total := 0
	for lvl, n := range ss.MatchLevelCounts {
		if n != bs.MatchLevelCounts[lvl] {
			t.Errorf("level %d: single counted %d, batch %d", lvl, n, bs.MatchLevelCounts[lvl])
		}
		total += n
	}
	if total != ss.AssignedTasks {
		t.Errorf("histogram sums to %d, assigned %d", total, ss.AssignedTasks)
	}
	if ss.MeanMatchLevel != bs.MeanMatchLevel {
		t.Errorf("mean level %v ≠ %v", ss.MeanMatchLevel, bs.MeanMatchLevel)
	}
}

// TestObfuscateBatchMatchesLoop: the agent-side batch obfuscator must draw
// exactly the stream of per-point Obfuscate calls.
func TestObfuscateBatchMatchesLoop(t *testing.T) {
	s := newTestServer(t)
	src := rng.New(9)
	pts := make([]geo.Point, 100)
	for i := range pts {
		pts[i] = geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))
	}
	a, err := NewObfuscator(s.Publication(), 33)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewObfuscator(s.Publication(), 33)
	if err != nil {
		t.Fatal(err)
	}
	got := a.ObfuscateBatch(pts)
	for i, p := range pts {
		if want := b.Obfuscate(p); got[i] != want {
			t.Fatalf("point %d: batch %v ≠ loop %v", i, []byte(got[i]), []byte(want))
		}
	}
}
