package platform

import (
	"fmt"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
)

// Epoch rotation: the server periodically republishes a fresh HST and
// re-noises the live worker population without stopping assignment. The
// protocol is two-phase so the expensive part happens while the old epoch
// keeps serving:
//
//  1. PrepareRotate builds and stages the next epoch's tree in the
//     background and hands it to the operator, who distributes it to
//     workers for client-side re-obfuscation.
//  2. Rotate commits: each listed fresh report spends its worker's
//     lifetime budget (exhausted workers are parked), every rotated worker
//     gets a fresh slot, and the engine's shard set is swapped atomically.
//     Available workers without a fresh report are dropped (their old
//     codes are meaningless under the new tree; they may register back
//     later). Busy workers keep their assignment and re-report under the
//     new tree at Release.
//
// In-flight Submit pops against the old epoch observe their popped slot
// superseded (retired, parked, or dropped) and retry against the new shard
// set — the same staleness rule that governs withdraw races — so no task
// is ever paired with a worker from a different epoch.

// PrepareRotate stages epoch N+1 while N keeps serving. The staged tree is
// returned for clients to re-obfuscate under; re-preparing replaces a
// previously staged rotation.
func (s *Server) PrepareRotate(req PrepareRotateRequest) PrepareRotateResponse {
	staged, err := s.rot.Prepare(req.Seed, req.Refit)
	if err != nil {
		return PrepareRotateResponse{OK: false, Reason: err.Error(), Err: conflictError(err.Error())}
	}
	return PrepareRotateResponse{OK: true, Epoch: staged.Epoch, Tree: staged.Tree}
}

// Rotate commits a staged rotation with the fresh reports collected from
// workers. Reports for workers that are unknown, busy, or already offline
// are skipped (busy workers keep serving their assignment and re-report at
// Release). The commit is atomic with respect to every other server
// operation: after it returns, the server publishes the new tree and no
// assignment can pair codes from different epochs.
func (s *Server) Rotate(req RotateRequest) RotateResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	staged := s.rot.StagedRotation()
	if staged == nil {
		reason := "platform: no rotation staged; call PrepareRotate first"
		return RotateResponse{OK: false, Reason: reason, Err: conflictError(reason)}
	}
	if req.Epoch != 0 && req.Epoch != staged.Epoch {
		reason := fmt.Sprintf("platform: rotation commit for epoch %d, staged is %d", req.Epoch, staged.Epoch)
		return RotateResponse{OK: false, Reason: reason, Err: conflictError(reason)}
	}

	// Filter to currently-available workers, first report per worker wins.
	resp := RotateResponse{Epoch: staged.Epoch}
	names := make([]string, 0, len(req.Reports))
	codeOf := make(map[string]hst.Code, len(req.Reports))
	for _, r := range req.Reports {
		slot, known := s.byID[r.WorkerID]
		if _, dup := codeOf[r.WorkerID]; dup || !known || s.states[slot] != stateAvailable ||
			staged.Tree.CheckCode(hst.Code(r.Code)) != nil {
			resp.Skipped++
			continue
		}
		names = append(names, r.WorkerID)
		codeOf[r.WorkerID] = hst.Code(r.Code)
	}

	// Planning against the staging read above: if a concurrent
	// PrepareRotate replaced it, the plan is refused (before any budget is
	// spent) rather than committing reports validated against one tree
	// under another.
	plan, err := s.rot.PlanRotation(staged, names, func(w string, _ *hst.Tree) (hst.Code, error) {
		return codeOf[w], nil
	})
	if err != nil {
		return RotateResponse{OK: false, Reason: err.Error(), Err: conflictError(err.Error())}
	}

	// Stage the new population with slot numbers pre-allocated in report
	// order, swap the engine, and only then mutate the tables — a failed
	// swap must leave the old epoch fully intact. A capacitated worker
	// carries its remaining units (capacity − active) into the new epoch;
	// its outstanding tasks keep running and release against the new slot.
	//
	// A core that can take the population as a replayable sequence gets it
	// that way: the inserts derive deterministically from the plan and the
	// slot tables (both frozen under mu here), so handing the engine a
	// generator instead of a []EpochInsert lets it rotate a 10M-worker
	// population without materializing a second copy beside the live one.
	// Cores without the seam (a cluster coordinator, whose two-phase
	// prepare must partition the inserts across nodes anyway) keep the
	// materialized path.
	base := len(s.workerIDs)
	populate := func(yield func(engine.EpochInsert) bool) {
		n := 0
		for i := range plan.Outcomes {
			if plan.Outcomes[i].Parked {
				continue
			}
			old := s.byID[plan.Outcomes[i].Worker]
			in := engine.EpochInsert{
				Code: plan.Outcomes[i].Code,
				ID:   base + n,
				Cap:  s.capacity[old] - s.active[old],
			}
			n++
			if !yield(in) {
				return
			}
		}
	}
	var swapErr error
	if sw, ok := s.eng.(seqSwapper); ok {
		swapErr = sw.SwapEpochSeq(plan.Epoch, plan.Tree, 0, populate)
	} else {
		inserts := make([]engine.EpochInsert, 0, len(plan.Outcomes))
		populate(func(in engine.EpochInsert) bool {
			inserts = append(inserts, in)
			return true
		})
		swapErr = s.eng.SwapEpoch(plan.Epoch, plan.Tree, 0, inserts)
	}
	if swapErr != nil {
		// A cluster core aborts the distributed prepare on every node before
		// reporting failure, so the old epoch keeps serving intact.
		return RotateResponse{OK: false, Reason: swapErr.Error(), Err: AsError(swapErr, s.epoch)}
	}

	// The swap is live: record the new slots and close out the old epoch's
	// available population. An in-flight pop of an old slot now reads a
	// superseded state under mu and retries against the new shard set.
	for i := range plan.Outcomes {
		o := &plan.Outcomes[i]
		old := s.byID[o.Worker]
		if o.Parked {
			s.states[old] = stateParked
			resp.Parked = append(resp.Parked, o.Worker)
			continue
		}
		slot := len(s.workerIDs)
		s.workerIDs = append(s.workerIDs, o.Worker)
		s.codes = append(s.codes, o.Code)
		s.states = append(s.states, stateAvailable)
		s.slotEpoch = append(s.slotEpoch, plan.Epoch)
		// The new slot inherits the stint's capacity accounting: tasks
		// assigned before the rotation release against it.
		s.capacity = append(s.capacity, s.capacity[old])
		s.active = append(s.active, s.active[old])
		s.active[old] = 0
		s.byID[o.Worker] = slot
		s.states[old] = stateRetired
		resp.Rotated++
	}
	// Available workers with no fresh report: dropped. (Every rotated or
	// parked slot was just moved off stateAvailable above, so whatever is
	// still available below base had no usable report.) Their engine
	// entries vanished with the old shard set; the slot is closed like a
	// withdrawal, so the worker may register back later with a fresh spend.
	for slot := 0; slot < base; slot++ {
		if s.states[slot] == stateAvailable {
			if s.active[slot] > 0 {
				// A capacitated dropped worker still owes completions: it
				// finishes them offline and goes fully gone at its last
				// Release, exactly like a withdrawal.
				s.states[slot] = stateAssignedGone
			} else {
				s.states[slot] = stateGone
			}
			s.dropped++
			resp.Dropped = append(resp.Dropped, s.workerIDs[slot])
		}
	}

	if err := s.rot.Commit(plan); err != nil {
		// Unreachable: the staged rotation is checked above and mu
		// serialises commits. Surface it rather than serving half-rotated.
		panic(fmt.Sprintf("platform: rotation commit: %v", err))
	}
	s.epoch = plan.Epoch
	s.pub.Tree = plan.Tree
	s.pub.Epoch = plan.Epoch
	resp.OK = true
	return resp
}

// RotateNow runs both rotation phases in one step for in-process callers
// (tests, the simulator, single-binary deployments): it stages the next
// epoch, collects a fresh report for every listed worker through the
// report callback — client-side code, invoked with the staged tree — and
// commits. workers lists the population to rotate in a caller-chosen,
// deterministic order; nil rotates every available worker in slot order. A
// report error drops that worker (as if it had not re-reported).
func (s *Server) RotateNow(req PrepareRotateRequest, workers []string, report func(workerID string, tree *hst.Tree) (hst.Code, error)) RotateResponse {
	prep := s.PrepareRotate(req)
	if !prep.OK {
		return RotateResponse{OK: false, Reason: prep.Reason, Err: prep.Err}
	}
	if workers == nil {
		s.mu.Lock()
		for slot, st := range s.states {
			if st == stateAvailable {
				workers = append(workers, s.workerIDs[slot])
			}
		}
		s.mu.Unlock()
	}
	reports := make([]WorkerReport, 0, len(workers))
	for _, w := range workers {
		code, err := report(w, prep.Tree)
		if err != nil {
			continue
		}
		reports = append(reports, WorkerReport{WorkerID: w, Code: []byte(code)})
	}
	return s.Rotate(RotateRequest{Epoch: prep.Epoch, Reports: reports})
}
