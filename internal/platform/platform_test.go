package platform

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

func newTestServer(t testing.TB) *Server {
	t.Helper()
	s, err := NewServer(workload.SyntheticRegion, 8, 8, 0.6, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(workload.SyntheticRegion, 0, 8, 0.6, 1); err == nil {
		t.Error("bad grid accepted")
	}
	if _, err := NewServer(workload.SyntheticRegion, 8, 8, 0, 1); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestRegisterAndSubmitDirect(t *testing.T) {
	s := newTestServer(t)
	o, err := NewObfuscator(s.Publication(), 7)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	for i := 0; i < 20; i++ {
		w := Worker{ID: fmt.Sprintf("w%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		if err := w.Register(s, o); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.RegisteredWorkers != 20 || st.AvailableWorkers != 20 {
		t.Fatalf("stats after registration: %+v", st)
	}
	assignedWorkers := map[string]bool{}
	for i := 0; i < 25; i++ {
		task := Task{ID: fmt.Sprintf("t%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		wid, ok, err := task.Submit(s, o)
		if err != nil {
			t.Fatal(err)
		}
		if i < 20 {
			if !ok {
				t.Fatalf("task %d unassigned with workers available", i)
			}
			if assignedWorkers[wid] {
				t.Fatalf("worker %s assigned twice", wid)
			}
			assignedWorkers[wid] = true
		} else if ok {
			t.Fatalf("task %d assigned with no workers left", i)
		}
	}
	st = s.Stats()
	if st.AssignedTasks != 20 || st.RejectedTasks != 5 || st.AvailableWorkers != 0 {
		t.Errorf("final stats: %+v", st)
	}
}

func TestRegisterRejections(t *testing.T) {
	s := newTestServer(t)
	o, err := NewObfuscator(s.Publication(), 7)
	if err != nil {
		t.Fatal(err)
	}
	code := []byte(o.Obfuscate(geo.Pt(10, 10)))
	if resp := s.Register(RegisterRequest{WorkerID: "", Code: code}); resp.OK {
		t.Error("empty id accepted")
	}
	if resp := s.Register(RegisterRequest{WorkerID: "a", Code: []byte{1}}); resp.OK {
		t.Error("malformed code accepted")
	}
	if resp := s.Register(RegisterRequest{WorkerID: "a", Code: code}); !resp.OK {
		t.Fatalf("valid registration rejected: %s", resp.Reason)
	}
	if resp := s.Register(RegisterRequest{WorkerID: "a", Code: code}); resp.OK {
		t.Error("duplicate id accepted")
	}
}

func TestSubmitMalformedCode(t *testing.T) {
	s := newTestServer(t)
	if resp := s.Submit(TaskRequest{TaskID: "t", Code: []byte{9, 9}}); resp.Assigned {
		t.Error("malformed task code assigned")
	}
}

func TestObfuscatorValidation(t *testing.T) {
	s := newTestServer(t)
	pub := s.Publication()
	pub.Cols = 5 // now grid ≠ tree
	if _, err := NewObfuscator(pub, 1); err == nil {
		t.Error("mismatched publication accepted")
	}
	pub = s.Publication()
	pub.Epsilon = -1
	if _, err := NewObfuscator(pub, 1); err == nil {
		t.Error("bad epsilon accepted")
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	pub := client.Publication()
	if pub.Tree.NumPoints() != 64 || pub.Epsilon != 0.6 {
		t.Fatalf("publication lost fidelity: N=%d ε=%v", pub.Tree.NumPoints(), pub.Epsilon)
	}
	o, err := NewObfuscator(pub, 99)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	for i := 0; i < 10; i++ {
		w := Worker{ID: fmt.Sprintf("w%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		if err := w.Register(client, o); err != nil {
			t.Fatal(err)
		}
	}
	assigned := 0
	for i := 0; i < 12; i++ {
		task := Task{ID: fmt.Sprintf("t%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		_, ok, err := task.Submit(client, o)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			assigned++
		}
	}
	if assigned != 10 {
		t.Errorf("assigned %d of 12 tasks, want 10 (worker-limited)", assigned)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.AssignedTasks != 10 || stats.RejectedTasks != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestHTTPClientBadURL(t *testing.T) {
	if _, err := NewClient("http://127.0.0.1:1"); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestServerConcurrentSubmissions(t *testing.T) {
	s := newTestServer(t)
	o, err := NewObfuscator(s.Publication(), 3)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	const n = 200
	for i := 0; i < n; i++ {
		w := Worker{ID: fmt.Sprintf("w%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		if err := w.Register(s, o); err != nil {
			t.Fatal(err)
		}
	}
	// Fire tasks concurrently; each obfuscator is per-goroutine (sources
	// are not concurrency-safe).
	var wg sync.WaitGroup
	results := make([]string, n)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			og, err := NewObfuscator(s.Publication(), uint64(100+g))
			if err != nil {
				t.Error(err)
				return
			}
			lsrc := rng.New(uint64(g))
			for i := g; i < n; i += 8 {
				task := Task{ID: fmt.Sprintf("t%d", i), Loc: geo.Pt(lsrc.Uniform(0, 200), lsrc.Uniform(0, 200))}
				wid, ok, err := task.Submit(s, og)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					results[i] = wid
				}
			}
		}(g)
	}
	wg.Wait()
	seen := map[string]int{}
	for i, wid := range results {
		if wid == "" {
			t.Fatalf("task %d unassigned", i)
		}
		if prev, dup := seen[wid]; dup {
			t.Fatalf("worker %s assigned to tasks %d and %d", wid, prev, i)
		}
		seen[wid] = i
	}
}
