package platform

import (
	"net/http/httptest"
	"testing"

	"github.com/pombm/pombm/internal/geo"
)

func TestReregisterDirect(t *testing.T) {
	s := newTestServer(t)
	o, err := NewObfuscator(s.Publication(), 3)
	if err != nil {
		t.Fatal(err)
	}
	w := Worker{ID: "w1", Loc: geo.Pt(10, 10)}
	if err := w.Register(s, o); err != nil {
		t.Fatal(err)
	}
	// Move: the report changes but the worker stays available.
	newCode := o.Obfuscate(geo.Pt(150, 150))
	resp := s.Reregister(ReregisterRequest{WorkerID: "w1", Code: []byte(newCode)})
	if !resp.OK {
		t.Fatalf("reregister failed: %s", resp.Reason)
	}
	if st := s.Stats(); st.AvailableWorkers != 1 {
		t.Errorf("available = %d after move", st.AvailableWorkers)
	}
	// Unknown worker.
	if resp := s.Reregister(ReregisterRequest{WorkerID: "nope", Code: []byte(newCode)}); resp.OK {
		t.Error("unknown worker accepted")
	}
	// Bad code.
	if resp := s.Reregister(ReregisterRequest{WorkerID: "w1", Code: []byte{1}}); resp.OK {
		t.Error("malformed code accepted")
	}
	// Assign the worker, then moving must fail.
	task := Task{ID: "t1", Loc: geo.Pt(150, 150)}
	if _, ok, err := task.Submit(s, o); err != nil || !ok {
		t.Fatalf("assignment failed: %v", err)
	}
	if resp := s.Reregister(ReregisterRequest{WorkerID: "w1", Code: []byte(newCode)}); resp.OK {
		t.Error("assigned worker allowed to move")
	}
}

func TestReregisterAffectsMatching(t *testing.T) {
	s := newTestServer(t)
	// With a huge ε the obfuscation is effectively the identity, so
	// matching follows the reported geometry deterministically.
	pub := s.Publication()
	pub.Epsilon = 100
	oTight, err := NewObfuscator(pub, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := Worker{ID: "a", Loc: geo.Pt(10, 10)}
	b := Worker{ID: "b", Loc: geo.Pt(190, 190)}
	if err := a.Register(s, oTight); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(s, oTight); err != nil {
		t.Fatal(err)
	}
	// Move worker a onto the future task's own leaf: after the move the
	// task must match a, proving the index reflects the update.
	taskLoc := geo.Pt(60, 60)
	if resp := s.Reregister(ReregisterRequest{WorkerID: "a", Code: []byte(oTight.Obfuscate(taskLoc))}); !resp.OK {
		t.Fatalf("move failed: %s", resp.Reason)
	}
	task := Task{ID: "t", Loc: taskLoc}
	wid, ok, err := task.Submit(s, oTight)
	if err != nil || !ok {
		t.Fatalf("assignment failed: %v", err)
	}
	if wid != "a" {
		t.Errorf("task matched %s, want the moved worker a", wid)
	}
}

func TestBudgetedObfuscator(t *testing.T) {
	s := newTestServer(t) // ε = 0.6 per report
	pub := s.Publication()
	b, err := NewBudgetedObfuscator("w1", pub, 1.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Two reports fit (1.2 ≤ 1.5); the third (1.8) must fail.
	if _, err := b.Obfuscate(geo.Pt(10, 10)); err != nil {
		t.Fatalf("first report: %v", err)
	}
	if _, err := b.Obfuscate(geo.Pt(12, 10)); err != nil {
		t.Fatalf("second report: %v", err)
	}
	if rem := b.Remaining(); rem < 0.29 || rem > 0.31 {
		t.Errorf("remaining = %v, want 0.3", rem)
	}
	if _, err := b.Obfuscate(geo.Pt(14, 10)); err == nil {
		t.Error("third report exceeded budget but succeeded")
	}
	// Invalid lifetime.
	if _, err := NewBudgetedObfuscator("x", pub, 0, 1); err == nil {
		t.Error("zero lifetime accepted")
	}
}

func TestWorkerMoveToOverHTTP(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBudgetedObfuscator("w1", client.Publication(), 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	w := Worker{ID: "w1", Loc: geo.Pt(30, 30)}
	code, err := b.Obfuscate(w.Loc)
	if err != nil {
		t.Fatal(err)
	}
	if resp := client.Register(RegisterRequest{WorkerID: w.ID, Code: []byte(code)}); !resp.OK {
		t.Fatalf("register: %s", resp.Reason)
	}
	if err := w.MoveTo(client, b, geo.Pt(100, 100)); err != nil {
		t.Fatalf("MoveTo: %v", err)
	}
	// Budget: 2 × 0.6 spent.
	if rem := b.Remaining(); rem < 8.79 || rem > 8.81 {
		t.Errorf("remaining = %v, want 8.8", rem)
	}
}
