package platform

import (
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// stressScale multiplies iteration counts in the concurrent stress tests:
// the nightly CI lane sets POMBM_STRESS to churn through far more
// interleavings than the per-push run.
func stressScale(base int) int {
	if os.Getenv("POMBM_STRESS") != "" {
		return base * 10
	}
	return base
}

// TestServerConcurrentStress drives Register, Reregister, Submit,
// SubmitBatch, Release, and Stats concurrently against one server (run
// under -race). It asserts that no worker is ever double-assigned (each
// assignment event hands out a worker that is not currently held) and that
// the counters are consistent once the storm settles.
func TestServerConcurrentStress(t *testing.T) {
	s, err := NewServer(workload.SyntheticRegion, 8, 8, 0.6, 42, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	var (
		workersPerGor = stressScale(50)
		tasksPerGor   = stressScale(60)
	)
	const (
		regGoroutines   = 4
		taskGoroutines  = 4
		rereGoroutines  = 2
		statsGoroutines = 2
	)
	var (
		nWorkers = regGoroutines * workersPerGor
		nTasks   = taskGoroutines * tasksPerGor
	)

	// Phase 1: registrations, submissions, reregistrations, and stats reads
	// all at once. Tasks may outpace registrations, so rejections are
	// legitimate; what must never happen is a double assignment.
	var wg sync.WaitGroup
	var mu sync.Mutex
	held := map[string]bool{} // workers currently holding an assignment
	assignments := 0

	record := func(t *testing.T, wid string) {
		mu.Lock()
		defer mu.Unlock()
		if held[wid] {
			t.Errorf("worker %s assigned while already held", wid)
			return
		}
		held[wid] = true
		assignments++
	}

	for g := 0; g < regGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			o, err := NewObfuscator(s.Publication(), uint64(10+g))
			if err != nil {
				t.Error(err)
				return
			}
			src := rng.New(uint64(20 + g))
			for i := 0; i < workersPerGor; i++ {
				w := Worker{
					ID:  fmt.Sprintf("w-%d-%d", g, i),
					Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200)),
				}
				if err := w.Register(s, o); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < taskGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			o, err := NewObfuscator(s.Publication(), uint64(30+g))
			if err != nil {
				t.Error(err)
				return
			}
			src := rng.New(uint64(40 + g))
			if g%2 == 0 {
				// Batched submission path.
				req := TaskBatchRequest{}
				for i := 0; i < tasksPerGor; i++ {
					loc := geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))
					req.Tasks = append(req.Tasks, TaskRequest{
						TaskID: fmt.Sprintf("t-%d-%d", g, i),
						Code:   []byte(o.Obfuscate(loc)),
					})
				}
				for _, r := range s.SubmitBatch(req).Results {
					if r.Assigned {
						record(t, r.WorkerID)
					}
				}
				return
			}
			for i := 0; i < tasksPerGor; i++ {
				task := Task{
					ID:  fmt.Sprintf("t-%d-%d", g, i),
					Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200)),
				}
				wid, ok, err := task.Submit(s, o)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					record(t, wid)
				}
			}
		}(g)
	}
	for g := 0; g < rereGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			o, err := NewObfuscator(s.Publication(), uint64(50+g))
			if err != nil {
				t.Error(err)
				return
			}
			src := rng.New(uint64(60 + g))
			for i := 0; i < stressScale(40); i++ {
				// Move a random (possibly unregistered, possibly assigned)
				// worker; any well-formed response is acceptable.
				wid := fmt.Sprintf("w-%d-%d", src.Intn(regGoroutines), src.Intn(workersPerGor))
				loc := geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))
				s.Reregister(ReregisterRequest{WorkerID: wid, Code: []byte(o.Obfuscate(loc))})
			}
		}(g)
	}
	for g := 0; g < statsGoroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < stressScale(50); i++ {
				st := s.Stats()
				if st.AssignedTasks < 0 || st.AvailableWorkers < 0 || st.RegisteredWorkers > nWorkers {
					t.Errorf("implausible stats mid-run: %+v", st)
				}
			}
		}()
	}
	wg.Wait()

	st := s.Stats()
	if st.RegisteredWorkers != nWorkers {
		t.Errorf("registered %d, want %d", st.RegisteredWorkers, nWorkers)
	}
	if st.AssignedTasks != assignments {
		t.Errorf("server counted %d assignments, clients saw %d", st.AssignedTasks, assignments)
	}
	if st.AssignedTasks+st.RejectedTasks != nTasks {
		t.Errorf("assigned %d + rejected %d ≠ %d submitted", st.AssignedTasks, st.RejectedTasks, nTasks)
	}
	if st.AvailableWorkers != nWorkers-assignments {
		t.Errorf("available %d, want %d - %d", st.AvailableWorkers, nWorkers, assignments)
	}

	// Phase 2: release every held worker concurrently (half with a fresh
	// report), then drain the pool again and check the books.
	heldIDs := make([]string, 0, len(held))
	for wid := range held {
		heldIDs = append(heldIDs, wid)
	}
	o, err := NewObfuscator(s.Publication(), 77)
	if err != nil {
		t.Fatal(err)
	}
	freshCodes := make([][]byte, len(heldIDs))
	relSrc := rng.New(88)
	for i := range heldIDs {
		if i%2 == 0 {
			freshCodes[i] = []byte(o.Obfuscate(geo.Pt(relSrc.Uniform(0, 200), relSrc.Uniform(0, 200))))
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(heldIDs); i += 4 {
				resp := s.Release(ReleaseRequest{WorkerID: heldIDs[i], Code: freshCodes[i]})
				if !resp.OK {
					t.Errorf("release of %s failed: %s", heldIDs[i], resp.Reason)
				}
			}
		}(g)
	}
	wg.Wait()

	st = s.Stats()
	if st.ReleasedWorkers != len(heldIDs) {
		t.Errorf("released %d, want %d", st.ReleasedWorkers, len(heldIDs))
	}
	if st.AvailableWorkers != nWorkers {
		t.Errorf("available %d after releases, want %d", st.AvailableWorkers, nWorkers)
	}
	if resp := s.Release(ReleaseRequest{WorkerID: heldIDs[0]}); resp.OK {
		t.Error("double release accepted")
	}
}

// TestSubmitBatchSkipsMalformedEntries: a malformed batch entry must never
// reach the engine (it could otherwise consume a worker for a task that is
// answered with an error), must not count as a rejection, and must not
// shift the assignments of the valid entries around it.
func TestSubmitBatchSkipsMalformedEntries(t *testing.T) {
	s, err := NewServer(workload.SyntheticRegion, 1, 1, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObfuscator(s.Publication(), 5)
	if err != nil {
		t.Fatal(err)
	}
	w := Worker{ID: "w0", Loc: geo.Pt(1, 1)}
	if err := w.Register(s, o); err != nil {
		t.Fatal(err)
	}
	resp := s.SubmitBatch(TaskBatchRequest{Tasks: []TaskRequest{
		{TaskID: "bad", Code: []byte{77, 77}}, // wrong length and digits
		{TaskID: "good", Code: []byte(o.Obfuscate(geo.Pt(1, 1)))},
	}})
	if resp.Results[0].Assigned || resp.Results[0].Reason == "" {
		t.Errorf("malformed task result: %+v", resp.Results[0])
	}
	if !resp.Results[1].Assigned || resp.Results[1].WorkerID != "w0" {
		t.Errorf("valid task result: %+v — worker leaked to the malformed entry?", resp.Results[1])
	}
	st := s.Stats()
	if st.AssignedTasks != 1 || st.RejectedTasks != 0 || st.AvailableWorkers != 0 {
		t.Errorf("stats: %+v", st)
	}
}

// TestReleaseValidation covers the Release edge cases sequentially.
func TestReleaseValidation(t *testing.T) {
	s := newTestServer(t)
	o, err := NewObfuscator(s.Publication(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if resp := s.Release(ReleaseRequest{WorkerID: "ghost"}); resp.OK {
		t.Error("release of unregistered worker accepted")
	}
	w := Worker{ID: "w0", Loc: geo.Pt(10, 10)}
	if err := w.Register(s, o); err != nil {
		t.Fatal(err)
	}
	if resp := s.Release(ReleaseRequest{WorkerID: "w0"}); resp.OK {
		t.Error("release of never-assigned worker accepted")
	}
	task := Task{ID: "t0", Loc: geo.Pt(12, 12)}
	wid, ok, err := task.Submit(s, o)
	if err != nil || !ok || wid != "w0" {
		t.Fatalf("submit = (%s,%v,%v)", wid, ok, err)
	}
	if resp := s.Release(ReleaseRequest{WorkerID: "w0", Code: []byte{9}}); resp.OK {
		t.Error("release with malformed code accepted")
	}
	if resp := s.Release(ReleaseRequest{WorkerID: "w0"}); !resp.OK {
		t.Fatalf("release failed: %s", resp.Reason)
	}
	// The released worker is assignable again.
	if _, ok, _ := task.Submit(s, o); !ok {
		t.Error("released worker not assignable")
	}
}

// TestRegisterFailureLeavesNoState pins the fix for the half-registered
// state bug: a registration rejected at validation must leave the id free,
// the tables untouched, and the pool unchanged.
func TestRegisterFailureLeavesNoState(t *testing.T) {
	s := newTestServer(t)
	o, err := NewObfuscator(s.Publication(), 7)
	if err != nil {
		t.Fatal(err)
	}
	good := []byte(o.Obfuscate(geo.Pt(50, 50)))
	if resp := s.Register(RegisterRequest{WorkerID: "w", Code: []byte{0, 1}}); resp.OK {
		t.Fatal("malformed code accepted")
	}
	st := s.Stats()
	if st.RegisteredWorkers != 0 || st.AvailableWorkers != 0 {
		t.Fatalf("failed registration left state: %+v", st)
	}
	// The same id must be accepted on retry with a valid code.
	if resp := s.Register(RegisterRequest{WorkerID: "w", Code: good}); !resp.OK {
		t.Fatalf("retry after failed registration rejected: %s", resp.Reason)
	}
	st = s.Stats()
	if st.RegisteredWorkers != 1 || st.AvailableWorkers != 1 {
		t.Fatalf("stats after retry: %+v", st)
	}
}

// TestHTTPBatchAndRelease exercises the new endpoints over the wire.
func TestHTTPBatchAndRelease(t *testing.T) {
	s := newTestServer(t)
	o, err := NewObfuscator(s.Publication(), 9)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(14)
	for i := 0; i < 6; i++ {
		w := Worker{ID: fmt.Sprintf("w%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		if err := w.Register(s, o); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	req := TaskBatchRequest{}
	for i := 0; i < 8; i++ {
		loc := geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))
		req.Tasks = append(req.Tasks, TaskRequest{
			TaskID: fmt.Sprintf("t%d", i),
			Code:   []byte(o.Obfuscate(loc)),
		})
	}
	resp := client.SubmitBatch(req)
	if len(resp.Results) != 8 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	assigned := map[string]bool{}
	for i, r := range resp.Results {
		if i < 6 && !r.Assigned {
			t.Errorf("task %d unassigned: %s", i, r.Reason)
		}
		if i >= 6 && r.Assigned {
			t.Errorf("task %d assigned with empty pool", i)
		}
		if r.Assigned {
			if assigned[r.WorkerID] {
				t.Errorf("worker %s assigned twice in batch", r.WorkerID)
			}
			assigned[r.WorkerID] = true
		}
	}
	for wid := range assigned {
		if rel := client.Release(ReleaseRequest{WorkerID: wid}); !rel.OK {
			t.Errorf("HTTP release of %s failed: %s", wid, rel.Reason)
		}
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReleasedWorkers != 6 || stats.AvailableWorkers != 6 {
		t.Errorf("stats after releases: %+v", stats)
	}
}
