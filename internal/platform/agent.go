package platform

import (
	"errors"
	"fmt"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
)

// Backend abstracts how agents reach the server: directly in-process or
// over HTTP. Both Server and Client satisfy it.
type Backend interface {
	Publication() Publication
	Register(RegisterRequest) RegisterResponse
	Submit(TaskRequest) TaskResponse
}

var _ Backend = (*Server)(nil)

// API is the full client surface of a pombm deployment — everything a
// caller can do against a serving stack, whatever its shape. Client
// implements it over HTTP against one pombm-server, cluster.Client against
// a coordinator fronting many; code written against API is
// deployment-shape agnostic (pombm.Dial hands one out).
type API interface {
	Backend
	Reregister(ReregisterRequest) RegisterResponse
	Release(ReleaseRequest) RegisterResponse
	Withdraw(WithdrawRequest) RegisterResponse
	SubmitBatch(TaskBatchRequest) TaskBatchResponse
	PrepareRotate(PrepareRotateRequest) PrepareRotateResponse
	Rotate(RotateRequest) RotateResponse
	Stats() (StatsResponse, error)
}

// Obfuscator is the client-side privacy stack: it snaps a true location to
// the published grid and obfuscates the leaf with the HST mechanism, all on
// the agent's device. Only the resulting code travels to the server. It is
// not safe for concurrent use (it owns a random source and a reusable digit
// scratch); build one per goroutine.
type Obfuscator struct {
	grid    *geo.Grid
	tree    *hst.Tree
	mech    *privacy.HSTMechanism
	src     *rng.Source
	scratch []byte
}

// NewObfuscator builds the client-side stack from a publication. The seed
// is the agent's local randomness.
func NewObfuscator(pub Publication, seed uint64) (*Obfuscator, error) {
	grid, err := geo.NewGrid(pub.Region, pub.Cols, pub.Rows)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	if grid.Len() != pub.Tree.NumPoints() {
		return nil, fmt.Errorf("platform: publication grid (%d points) does not match tree (%d leaves)",
			grid.Len(), pub.Tree.NumPoints())
	}
	mech, err := privacy.NewHSTMechanism(pub.Tree, pub.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	return &Obfuscator{
		grid:    grid,
		tree:    pub.Tree,
		mech:    mech,
		src:     rng.New(seed),
		scratch: make([]byte, pub.Tree.Depth()),
	}, nil
}

// Obfuscate maps a true location to the leaf code reported to the server.
// It allocates at most the returned code itself.
func (o *Obfuscator) Obfuscate(p geo.Point) hst.Code {
	return o.mech.ObfuscateWalkInto(o.tree.CodeOf(o.grid.Snap(p)), o.src, o.scratch)
}

// ObfuscateBatch maps a wave of true locations to their reported leaf codes
// through the mechanism's batch sampler, which materialises every sampled
// code out of one shared slab: registering a fleet of workers costs a
// constant number of allocations instead of one per worker. The draws are
// exactly those of calling Obfuscate in order.
func (o *Obfuscator) ObfuscateBatch(pts []geo.Point) []hst.Code {
	snapped := make([]hst.Code, len(pts))
	for i, p := range pts {
		snapped[i] = o.tree.CodeOf(o.grid.Snap(p))
	}
	return o.mech.ObfuscateInto(make([]hst.Code, len(pts)), snapped, o.src)
}

// Worker is a crowd worker agent: it holds its true location privately and
// registers an obfuscated leaf.
type Worker struct {
	ID  string
	Loc geo.Point // true location; never leaves the agent
}

// Register snaps, obfuscates, and registers the worker.
func (w Worker) Register(b Backend, o *Obfuscator) error {
	resp := b.Register(RegisterRequest{WorkerID: w.ID, Code: []byte(o.Obfuscate(w.Loc))})
	if !resp.OK {
		return fmt.Errorf("platform: registration of %q failed: %s", w.ID, resp.Reason)
	}
	return nil
}

// Task is a spatial task agent with a private true location.
type Task struct {
	ID  string
	Loc geo.Point
}

// Submit obfuscates and submits the task. On assignment it returns the
// chosen worker's id; the pair would then exchange true locations over the
// private channel (modelled by the caller holding both agents).
func (t Task) Submit(b Backend, o *Obfuscator) (workerID string, assigned bool, err error) {
	resp := b.Submit(TaskRequest{TaskID: t.ID, Code: []byte(o.Obfuscate(t.Loc))})
	if !resp.Assigned {
		// "No available workers" is a normal unmatched outcome, not an
		// error. Match the structured refusal; fall back to the legacy
		// Reason string for pre-taxonomy servers.
		if (resp.Err != nil && errors.Is(resp.Err, ErrNoWorkers)) ||
			(resp.Err == nil && resp.Reason == "platform: no available workers") {
			return "", false, nil
		}
		if resp.Err != nil {
			return "", false, fmt.Errorf("platform: task %q rejected: %w", t.ID, resp.Err)
		}
		if resp.Reason != "" {
			return "", false, fmt.Errorf("platform: task %q rejected: %s", t.ID, resp.Reason)
		}
		return "", false, nil
	}
	return resp.WorkerID, true, nil
}
