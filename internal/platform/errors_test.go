package platform

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestStatsRejectsNonGET is the regression test for the method-check gap:
// /v1/stats accepted any HTTP method (a POST mutated nothing but was
// silently served as a read). It must refuse non-GET with 405, an Allow
// header, and a structured Error body.
func TestStatsRejectsNonGET(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, err := http.Post(ts.URL+PathStats, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST stats = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Errorf("Allow = %q, want GET", allow)
	}
	var e Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("405 body is not an Error: %v", err)
	}
	if e.Code != CodeMethodNotAllowed {
		t.Errorf("code = %q, want %q", e.Code, CodeMethodNotAllowed)
	}
}

// TestPostEndpointsValidateContentType is the regression test for the
// missing media-type check: a declared non-JSON body must be refused with
// 415 and a structured Error, while an absent Content-Type stays accepted
// for pre-taxonomy clients.
func TestPostEndpointsValidateContentType(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, err := http.Post(ts.URL+PathTask, "text/plain", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain task = %d, want 415", resp.StatusCode)
	}
	var e Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("415 body is not an Error: %v", err)
	}
	if e.Code != CodeUnsupportedMedia {
		t.Errorf("code = %q, want %q", e.Code, CodeUnsupportedMedia)
	}

	// Charset parameters and case must not trip the check.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+PathTask, strings.NewReader(`{"code":[0]}`))
	req.Header.Set("Content-Type", "Application/JSON; charset=utf-8")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("application/json with charset = %d, want 200", r2.StatusCode)
	}

	// No Content-Type at all: legacy clients keep working.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+PathTask, strings.NewReader(`{"code":[0]}`))
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Errorf("missing content type = %d, want 200", r3.StatusCode)
	}
}

// TestMethodErrorsCarryStructuredBody pins that 405 and 400 refusals on
// POST endpoints carry the Error taxonomy, not plain text.
func TestMethodErrorsCarryStructuredBody(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, err := http.Get(ts.URL + PathTask)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET task = %d, want 405", resp.StatusCode)
	}
	var e Error
	if err := json.Unmarshal(body, &e); err != nil || e.Code != CodeMethodNotAllowed {
		t.Errorf("405 body %q is not a method_not_allowed Error", body)
	}

	resp, err = http.Post(ts.URL+PathTask, "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Code != CodeBadRequest {
		t.Errorf("400 body %q is not a bad_request Error", body)
	}
}

// TestClientDecodesTypedErrors pins the structured taxonomy end to end
// over HTTP: refusals decode into *Error values that errors.Is-match the
// package sentinels, replacing Reason string matching.
func TestClientDecodesTypedErrors(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	code := []byte(s.Publication().Tree.CodeOf(0))

	// Stale epoch on registration.
	resp := client.Register(RegisterRequest{WorkerID: "w1", Code: code, Epoch: 99})
	if resp.OK {
		t.Fatal("stale-epoch register accepted")
	}
	if resp.Err == nil || !errors.Is(resp.Err, ErrStaleEpoch) {
		t.Errorf("stale register Err = %v, want ErrStaleEpoch match", resp.Err)
	}
	if resp.Err != nil && resp.Err.Epoch != s.Publication().Epoch {
		t.Errorf("stale register Err.Epoch = %d, want serving epoch %d", resp.Err.Epoch, s.Publication().Epoch)
	}

	// No workers for a task on an empty pool.
	tr := client.Submit(TaskRequest{TaskID: "t1", Code: code})
	if tr.Assigned {
		t.Fatal("task assigned from an empty pool")
	}
	if tr.Err == nil || !errors.Is(tr.Err, ErrNoWorkers) {
		t.Errorf("empty-pool submit Err = %v, want ErrNoWorkers match", tr.Err)
	}
	if tr.Err != nil && !tr.Err.Retryable {
		t.Error("no_workers refusal not marked retryable")
	}

	// Conflict on duplicate registration.
	if r := client.Register(RegisterRequest{WorkerID: "w1", Code: code}); !r.OK {
		t.Fatalf("register failed: %s", r.Reason)
	}
	dup := client.Register(RegisterRequest{WorkerID: "w1", Code: code})
	if dup.OK {
		t.Fatal("duplicate registration accepted")
	}
	if dup.Err == nil || dup.Err.Code != CodeConflict {
		t.Errorf("duplicate register Err = %v, want conflict code", dup.Err)
	}
}

// TestParkedErrorMatchesBudgetSentinels pins the taxonomy's park/budget
// relationship: a parked refusal matches both ErrParked and
// ErrBudgetExhausted (parking is budget exhaustion made permanent).
func TestParkedErrorMatchesBudgetSentinels(t *testing.T) {
	e := parkedError("w9")
	if !errors.Is(e, ErrParked) {
		t.Error("parked Error does not match ErrParked")
	}
	if !errors.Is(e, ErrBudgetExhausted) {
		t.Error("parked Error does not match ErrBudgetExhausted")
	}
	var nilErr *Error
	if errors.Is(nilErr, ErrParked) {
		t.Error("nil *Error matched a sentinel")
	}
	if got := nilErr.Error(); got != "<nil>" {
		t.Errorf("nil *Error message %q", got)
	}
}
