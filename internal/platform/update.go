package platform

import (
	"fmt"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/privacy"
)

// Location updates. The paper's model is one-shot: every agent reports one
// obfuscated location. A deployed platform has workers that move and
// re-report, and each re-report of a (correlated) location spends privacy
// budget under sequential composition. This file adds both halves:
// server-side re-registration and a client-side obfuscator that refuses to
// exceed a lifetime budget.

// ReregisterRequest replaces a worker's reported leaf.
type ReregisterRequest struct {
	WorkerID string `json:"worker_id"`
	Code     []byte `json:"code"`
	// Epoch tags the publication the code was obfuscated under; 0 accepts
	// the serving epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// Reregister updates an available worker's reported location. Workers that
// are already assigned cannot move their report (the assignment already
// happened); unknown workers are rejected. An update is a fresh report:
// with a lifetime budget configured it spends the publication's ε, and a
// worker that cannot afford it is parked — removed from the pool — rather
// than silently re-noised.
func (s *Server) Reregister(req ReregisterRequest) RegisterResponse {
	code := hst.Code(req.Code)
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Epoch != 0 && req.Epoch != s.epoch {
		e := staleEpochError(req.Epoch, s.epoch)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	if err := s.pub.Tree.CheckCode(code); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error(), Err: badRequestError(err.Error())}
	}
	slot, ok := s.byID[req.WorkerID]
	if !ok {
		reason := fmt.Sprintf("platform: worker %q not registered", req.WorkerID)
		return RegisterResponse{OK: false, Reason: reason, Err: badRequestError(reason)}
	}
	switch s.states[slot] {
	case stateGone, stateAssignedGone:
		reason := fmt.Sprintf("platform: worker %q has withdrawn", req.WorkerID)
		return RegisterResponse{OK: false, Reason: reason, Err: conflictError(reason)}
	case stateParked:
		return RegisterResponse{OK: false, Parked: true, Reason: parkedReason(req.WorkerID), Err: parkedError(req.WorkerID)}
	case stateAssigned:
		reason := fmt.Sprintf("platform: worker %q already assigned", req.WorkerID)
		return RegisterResponse{OK: false, Reason: reason, Err: conflictError(reason)}
	}
	if !s.eng.Remove(s.codes[slot], slot) {
		// A concurrent Submit popped the worker between its engine pop and
		// its table update (which waits on mu): the assignment wins.
		reason := fmt.Sprintf("platform: worker %q already assigned", req.WorkerID)
		return RegisterResponse{OK: false, Reason: reason, Err: conflictError(reason)}
	}
	if err := s.rot.Spend(req.WorkerID); err != nil {
		// The fresh report is unaffordable. The old report was already
		// withdrawn from the engine above, and it is not restored: the
		// worker is parked — out of the pool for good — instead of being
		// re-noised past its guarantee.
		s.states[slot] = stateParked
		return RegisterResponse{OK: false, Parked: true, Reason: parkedReason(req.WorkerID), Err: parkedError(req.WorkerID)}
	}
	if err := s.eng.InsertEpoch(code, slot, s.epoch); err != nil {
		// Unreachable given CheckCode above; restore the old report so the
		// worker is not lost from the pool.
		s.eng.InsertEpoch(s.codes[slot], slot, s.epoch)
		return RegisterResponse{OK: false, Reason: err.Error(), Err: AsError(err, s.epoch)}
	}
	s.codes[slot] = code
	s.slotEpoch[slot] = s.epoch
	s.rot.Observe(code)
	return RegisterResponse{OK: true, Epoch: s.epoch}
}

// BudgetedObfuscator is a client-side privacy stack with lifetime budget
// accounting: every obfuscation of the agent's location spends the
// publication's ε, and calls beyond the lifetime budget fail instead of
// silently degrading the guarantee.
type BudgetedObfuscator struct {
	agentID string
	inner   *Obfuscator
	eps     float64
	acct    *privacy.Accountant
}

// NewBudgetedObfuscator wraps the client-side stack for one agent with a
// lifetime ε budget.
func NewBudgetedObfuscator(agentID string, pub Publication, lifetime float64, seed uint64) (*BudgetedObfuscator, error) {
	inner, err := NewObfuscator(pub, seed)
	if err != nil {
		return nil, err
	}
	acct, err := privacy.NewAccountant(lifetime)
	if err != nil {
		return nil, err
	}
	return &BudgetedObfuscator{
		agentID: agentID,
		inner:   inner,
		eps:     pub.Epsilon,
		acct:    acct,
	}, nil
}

// Obfuscate spends ε from the lifetime budget and reports the obfuscated
// leaf, or fails when the budget is exhausted.
func (b *BudgetedObfuscator) Obfuscate(p geo.Point) (hst.Code, error) {
	if err := b.acct.Spend(b.agentID, b.eps); err != nil {
		return "", err
	}
	return b.inner.Obfuscate(p), nil
}

// Remaining returns the unspent lifetime budget.
func (b *BudgetedObfuscator) Remaining() float64 {
	return b.acct.Remaining(b.agentID)
}

// MoveTo re-reports a worker's location through a budgeted obfuscator: it
// obfuscates the new true location (spending budget) and re-registers the
// result with the server.
func (w Worker) MoveTo(backend interface {
	Reregister(ReregisterRequest) RegisterResponse
}, b *BudgetedObfuscator, newLoc geo.Point) error {
	code, err := b.Obfuscate(newLoc)
	if err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	resp := backend.Reregister(ReregisterRequest{WorkerID: w.ID, Code: []byte(code)})
	if !resp.OK {
		return fmt.Errorf("platform: reregistration of %q failed: %s", w.ID, resp.Reason)
	}
	return nil
}
