package platform

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/pombm/pombm/internal/rng"
)

// register is a test helper adding a worker at a fixed valid leaf.
func register(t *testing.T, s *Server, id string) {
	t.Helper()
	code := s.Publication().Tree.CodeOf(0)
	if resp := s.Register(RegisterRequest{WorkerID: id, Code: []byte(code)}); !resp.OK {
		t.Fatalf("register %s: %s", id, resp.Reason)
	}
}

func TestWithdrawAvailableWorker(t *testing.T) {
	s := newTestServer(t)
	register(t, s, "w1")
	if resp := s.Withdraw(WithdrawRequest{WorkerID: "w1"}); !resp.OK {
		t.Fatalf("withdraw: %s", resp.Reason)
	}
	st := s.Stats()
	if st.AvailableWorkers != 0 || st.WithdrawnWorkers != 1 {
		t.Fatalf("stats after withdraw: %+v", st)
	}
	// The pool is empty: tasks are rejected.
	code := s.Publication().Tree.CodeOf(0)
	if resp := s.Submit(TaskRequest{TaskID: "t1", Code: []byte(code)}); resp.Assigned {
		t.Fatal("task assigned to a withdrawn worker")
	}
	// Double withdraw is rejected.
	if resp := s.Withdraw(WithdrawRequest{WorkerID: "w1"}); resp.OK {
		t.Fatal("double withdraw accepted")
	}
	// Location updates on a withdrawn worker are rejected.
	if resp := s.Reregister(ReregisterRequest{WorkerID: "w1", Code: []byte(code)}); resp.OK {
		t.Fatal("reregister of a withdrawn worker accepted")
	}
}

func TestWithdrawnWorkerMayRegisterBack(t *testing.T) {
	s := newTestServer(t)
	register(t, s, "w1")
	if resp := s.Withdraw(WithdrawRequest{WorkerID: "w1"}); !resp.OK {
		t.Fatal(resp.Reason)
	}
	// Re-registration under the same id with a fresh code revives the slot.
	code := s.Publication().Tree.CodeOf(1)
	if resp := s.Register(RegisterRequest{WorkerID: "w1", Code: []byte(code)}); !resp.OK {
		t.Fatalf("re-register after withdraw: %s", resp.Reason)
	}
	st := s.Stats()
	if st.RegisteredWorkers != 1 || st.AvailableWorkers != 1 {
		t.Fatalf("stats after revival: %+v", st)
	}
	if resp := s.Submit(TaskRequest{TaskID: "t1", Code: []byte(code)}); !resp.Assigned || resp.WorkerID != "w1" {
		t.Fatalf("revived worker not assignable: %+v", resp)
	}
	// The revival is a fresh stint (fresh slot): the full lifecycle keeps
	// working on it.
	if resp := s.Release(ReleaseRequest{WorkerID: "w1"}); !resp.OK {
		t.Fatalf("release of revived worker: %s", resp.Reason)
	}
	if st := s.Stats(); st.RegisteredWorkers != 1 || st.AvailableWorkers != 1 {
		t.Fatalf("stats after revived release: %+v", st)
	}
}

func TestWithdrawAssignedWorkerLeavesAfterTask(t *testing.T) {
	s := newTestServer(t)
	register(t, s, "w1")
	code := s.Publication().Tree.CodeOf(0)
	if resp := s.Submit(TaskRequest{TaskID: "t1", Code: []byte(code)}); !resp.Assigned {
		t.Fatal("task unassigned")
	}
	if resp := s.Withdraw(WithdrawRequest{WorkerID: "w1"}); !resp.OK {
		t.Fatalf("withdraw of assigned worker: %s", resp.Reason)
	}
	// The worker finishes but does not come back to the pool.
	resp := s.Release(ReleaseRequest{WorkerID: "w1"})
	if resp.OK || !strings.Contains(resp.Reason, "withdrawn") {
		t.Fatalf("release of a withdrawn worker: %+v", resp)
	}
	st := s.Stats()
	if st.AvailableWorkers != 0 || st.WithdrawnWorkers != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The rejected Release marked the stint over: the worker is plain
	// offline now and may register back with a fresh code.
	if resp := s.Register(RegisterRequest{WorkerID: "w1", Code: []byte(s.Publication().Tree.CodeOf(2))}); !resp.OK {
		t.Fatalf("re-register after assigned-withdrawal + completion: %s", resp.Reason)
	}
	if st := s.Stats(); st.AvailableWorkers != 1 {
		t.Fatalf("stats after revival: %+v", st)
	}
}

func TestWithdrawUnknownWorker(t *testing.T) {
	s := newTestServer(t)
	if resp := s.Withdraw(WithdrawRequest{WorkerID: "ghost"}); resp.OK {
		t.Fatal("withdraw of unknown worker accepted")
	}
}

// TestConcurrentWithdrawSubmit races Withdraw against Submit on a shared
// pool (run under -race). Whoever wins each race, the books must balance:
// no double assignment, every withdrawn worker out of the pool for good,
// and a Release succeeding exactly for workers that were assigned and had
// not withdrawn.
func TestConcurrentWithdrawSubmit(t *testing.T) {
	s := newTestServer(t)
	tree := s.Publication().Tree
	n := stressScale(200)
	src := rng.New(17)
	for i := 0; i < n; i++ {
		code := tree.CodeOf(src.Intn(tree.NumPoints()))
		if resp := s.Register(RegisterRequest{WorkerID: fmt.Sprintf("w%d", i), Code: []byte(code)}); !resp.OK {
			t.Fatal(resp.Reason)
		}
	}

	var mu sync.Mutex
	held := map[string]bool{}
	withdrawnOK := 0

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(100 + g))
			for i := 0; i < n/2; i++ {
				code := tree.CodeOf(src.Intn(tree.NumPoints()))
				resp := s.Submit(TaskRequest{TaskID: fmt.Sprintf("t%d-%d", g, i), Code: []byte(code)})
				if !resp.Assigned {
					continue
				}
				mu.Lock()
				if held[resp.WorkerID] {
					t.Errorf("worker %s double-assigned", resp.WorkerID)
				}
				held[resp.WorkerID] = true
				mu.Unlock()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(200 + g))
			for i := 0; i < n/4; i++ {
				wid := fmt.Sprintf("w%d", src.Intn(n))
				if s.Withdraw(WithdrawRequest{WorkerID: wid}).OK {
					mu.Lock()
					withdrawnOK++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if st.WithdrawnWorkers != withdrawnOK {
		t.Errorf("server counted %d withdrawals, clients saw %d", st.WithdrawnWorkers, withdrawnOK)
	}
	if st.AvailableWorkers != s.Engine().Len() {
		t.Errorf("stats available %d != engine %d", st.AvailableWorkers, s.Engine().Len())
	}

	// Release everyone who was assigned: rejections are exactly the
	// workers that withdrew mid-assignment, and afterwards the pool holds
	// everyone except the withdrawn.
	releasedOK, releaseRejected := 0, 0
	for wid := range held {
		if s.Release(ReleaseRequest{WorkerID: wid}).OK {
			releasedOK++
		} else {
			releaseRejected++
		}
	}
	if releaseRejected > withdrawnOK {
		t.Errorf("%d releases rejected but only %d withdrawals", releaseRejected, withdrawnOK)
	}
	st = s.Stats()
	if want := n - withdrawnOK; st.AvailableWorkers != want {
		t.Errorf("available %d after releases, want %d - %d = %d", st.AvailableWorkers, n, withdrawnOK, want)
	}
	if st.AvailableWorkers != s.Engine().Len() {
		t.Errorf("stats available %d != engine %d after releases", st.AvailableWorkers, s.Engine().Len())
	}
}

func TestWithdrawOverHTTP(t *testing.T) {
	s := newTestServer(t)
	register(t, s, "w1")
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	c, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp := c.Withdraw(WithdrawRequest{WorkerID: "w1"}); !resp.OK {
		t.Fatalf("HTTP withdraw: %s", resp.Reason)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WithdrawnWorkers != 1 || st.AvailableWorkers != 0 {
		t.Fatalf("stats over HTTP: %+v", st)
	}
}
