package platform

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// TestConcurrentRotateEpochConsistency is the rotation property test,
// modeled on the engine churn test: submitters, churners (register/
// withdraw), and a rotator hammer one server concurrently under -race.
// Two invariants are asserted:
//
//  1. Epoch consistency — every accepted assignment pairs a task with a
//     worker obfuscated under the task's own epoch (the response stamp
//     equals the epoch the submitter tagged), and every pop that raced a
//     rotation was either refused as stale or retried onto the new epoch;
//     no cross-epoch match ever surfaces.
//  2. Budget conservation — the accountant's grand total equals ε times
//     the number of accepted fresh reports the callers observed
//     (registrations, fresh-code releases, rotation re-reports), and no
//     worker exceeds its lifetime budget.
func TestConcurrentRotateEpochConsistency(t *testing.T) {
	const eps = 0.6
	// Roomy lifetime so parking stays rare but possible under stress.
	s, err := NewServer(workload.SyntheticRegion, 16, 16, eps, 42,
		WithShards(4), WithLifetimeBudget(60*eps))
	if err != nil {
		t.Fatal(err)
	}

	const nWorkers = 128
	const nSubmitters = 4
	const nChurners = 3
	rotations := stressScale(8)
	opsPerSubmitter := stressScale(400)
	opsPerChurner := stressScale(200)

	// freshReports counts every accepted fresh report across all
	// goroutines: the callers' half of the budget-conservation ledger.
	var freshReports atomic.Int64
	var crossEpoch atomic.Int64
	var assignedTotal atomic.Int64

	// Per-worker locks serialise one worker's lifecycle without
	// serialising the server. Worker w may be registered/withdrawn by its
	// churner and released by any submitter that got it assigned.
	type workerSlot struct {
		mu         sync.Mutex
		registered bool
		parked     bool
	}
	slots := make([]workerSlot, nWorkers)
	name := func(w int) string { return fmt.Sprintf("w%d", w) }

	// obf builds a fresh obfuscator over the current publication; each
	// goroutine re-fetches after observing a stale-epoch refusal.
	obf := func(seed uint64) (*Obfuscator, Publication) {
		pub := s.Publication()
		o, err := NewObfuscator(pub, seed)
		if err != nil {
			panic(err)
		}
		return o, pub
	}

	// Seed the pool.
	{
		o, pub := obf(1)
		src := rng.New(2)
		for w := 0; w < nWorkers; w++ {
			resp := s.Register(RegisterRequest{
				WorkerID: name(w),
				Code:     []byte(o.Obfuscate(geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200)))),
				Epoch:    pub.Epoch,
			})
			if !resp.OK {
				t.Fatal(resp.Reason)
			}
			slots[w].registered = true
			freshReports.Add(1)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < nSubmitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(10).DeriveN("submit", g)
			o, pub := obf(uint64(100 + g))
			for op := 0; op < opsPerSubmitter; op++ {
				code := o.Obfuscate(geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200)))
				resp := s.Submit(TaskRequest{Code: []byte(code), Epoch: pub.Epoch})
				if !resp.Assigned {
					// Stale epoch: re-fetch the publication and continue.
					// "no available workers" is a normal outcome under churn.
					if pub2 := s.Publication(); pub2.Epoch != pub.Epoch {
						o, pub = obf(uint64(100 + g))
					}
					continue
				}
				assignedTotal.Add(1)
				if resp.Epoch != pub.Epoch {
					// The invariant under test: an accepted assignment pairs
					// the task's epoch exactly.
					crossEpoch.Add(1)
					t.Errorf("task tagged epoch %d matched worker from epoch %d", pub.Epoch, resp.Epoch)
				}
				// Release the worker back, usually at a fresh code (a fresh
				// spend), sometimes re-reporting (free, same epoch only).
				var w int
				fmt.Sscanf(resp.WorkerID, "w%d", &w)
				slots[w].mu.Lock()
				if src.Intn(4) > 0 {
					rel := s.Release(ReleaseRequest{
						WorkerID: resp.WorkerID,
						Code:     []byte(o.Obfuscate(geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200)))),
						Epoch:    pub.Epoch,
					})
					switch {
					case rel.OK:
						freshReports.Add(1)
					case rel.Parked:
						slots[w].parked = true
						slots[w].registered = false
					}
					// A stale-epoch refusal leaves the worker assigned; a
					// later release attempt (or the drain below) settles it.
					if !rel.OK && !rel.Parked {
						rel2 := s.Release(ReleaseRequest{WorkerID: resp.WorkerID})
						_ = rel2 // empty re-report may also be refused post-rotation; drained below
					}
				} else {
					rel := s.Release(ReleaseRequest{WorkerID: resp.WorkerID})
					_ = rel
				}
				slots[w].mu.Unlock()
			}
		}(g)
	}
	for g := 0; g < nChurners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(20).DeriveN("churn", g)
			o, pub := obf(uint64(200 + g))
			for op := 0; op < opsPerChurner; op++ {
				w := src.Intn(nWorkers)
				slots[w].mu.Lock()
				if slots[w].parked {
					slots[w].mu.Unlock()
					continue
				}
				if slots[w].registered && src.Intn(2) == 0 {
					resp := s.Withdraw(WithdrawRequest{WorkerID: name(w)})
					if resp.OK {
						slots[w].registered = false
					} else if resp.Parked {
						slots[w].parked = true
						slots[w].registered = false
					}
					// "not registered"/"already withdrawn" can happen when a
					// rotation dropped or re-slotted the worker; harmless.
				} else if !slots[w].registered {
					resp := s.Register(RegisterRequest{
						WorkerID: name(w),
						Code:     []byte(o.Obfuscate(geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200)))),
						Epoch:    pub.Epoch,
					})
					switch {
					case resp.OK:
						slots[w].registered = true
						freshReports.Add(1)
					case resp.Parked:
						slots[w].parked = true
					default:
						if pub2 := s.Publication(); pub2.Epoch != pub.Epoch {
							o, pub = obf(uint64(200 + g))
						}
					}
				}
				slots[w].mu.Unlock()
			}
		}(g)
	}

	// The rotator: prepare + re-obfuscate + commit, concurrently with all
	// of the above. Fresh reports come from a reporter goroutine-local rng.
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := rng.New(30)
		for r := 0; r < rotations; r++ {
			resp := s.RotateNow(PrepareRotateRequest{}, nil, func(workerID string, tree *hst.Tree) (hst.Code, error) {
				b := make([]byte, tree.Depth())
				for j := range b {
					b[j] = byte(src.Intn(tree.Degree()))
				}
				return hst.Code(b), nil
			})
			if !resp.OK {
				t.Errorf("rotation %d: %s", r, resp.Reason)
				return
			}
			freshReports.Add(int64(resp.Rotated))
			// Rotation closes stints: dropped workers are offline, parked
			// are terminal. Reflect both in the test ledger.
			for _, id := range resp.Dropped {
				var w int
				fmt.Sscanf(id, "w%d", &w)
				slots[w].mu.Lock()
				slots[w].registered = false
				slots[w].mu.Unlock()
			}
			for _, id := range resp.Parked {
				var w int
				fmt.Sscanf(id, "w%d", &w)
				slots[w].mu.Lock()
				slots[w].parked = true
				slots[w].registered = false
				slots[w].mu.Unlock()
			}
		}
	}()
	wg.Wait()

	if assignedTotal.Load() == 0 {
		t.Fatal("no assignments happened; the race exercised nothing")
	}
	if crossEpoch.Load() > 0 {
		t.Fatalf("%d cross-epoch assignments", crossEpoch.Load())
	}

	// Quiesced: budget conservation. The accountant's total must equal ε
	// times the callers' count of accepted fresh reports exactly — every
	// spend observed by a caller and no spend invented by the server.
	st := s.Stats()
	wantSpent := eps * float64(freshReports.Load())
	if diff := st.BudgetSpentTotal - wantSpent; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("BudgetSpentTotal = %v, callers observed %d fresh reports (= %v)",
			st.BudgetSpentTotal, freshReports.Load(), wantSpent)
	}
	if st.BudgetLimit != 60*eps {
		t.Errorf("BudgetLimit = %v", st.BudgetLimit)
	}
	// ...and no worker ever exceeds its lifetime limit.
	for w := 0; w < nWorkers; w++ {
		if spent := s.rot.Spent(name(w)); spent > st.BudgetLimit+1e-9 {
			t.Errorf("worker %d spent %v over limit %v", w, spent, st.BudgetLimit)
		}
	}
	if st.Epoch != int64(1+rotations) {
		t.Errorf("final epoch %d, want %d", st.Epoch, 1+rotations)
	}

	// Drain: every remaining available worker must be from the final
	// epoch, at a code valid for the final tree.
	pub := s.Publication()
	o, err := NewObfuscator(pub, 999)
	if err != nil {
		t.Fatal(err)
	}
	for {
		resp := s.Submit(TaskRequest{Code: []byte(o.Obfuscate(geo.Pt(100, 100))), Epoch: pub.Epoch})
		if !resp.Assigned {
			break
		}
		if resp.Epoch != pub.Epoch {
			t.Fatalf("drained worker %s from epoch %d, serving %d", resp.WorkerID, resp.Epoch, pub.Epoch)
		}
	}
}
