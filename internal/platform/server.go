package platform

import (
	"errors"
	"fmt"
	"sync"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// Server is the untrusted crowdsourcing platform. It sees only obfuscated
// leaf codes and assigns each arriving task to the tree-nearest available
// worker (Alg. 4). It is a thin transport wrapper over the sharded
// concurrent assignment engine (internal/engine): the engine holds the
// availability state and answers each task in O(D) with shard-local
// locking, while the server only maps external worker ids to engine slots
// and keeps counters.
//
// Server is safe for concurrent use; Submit calls on disjoint top-level
// HST branches do not contend.
type Server struct {
	pub Publication
	eng *engine.Engine

	// mu guards the slot tables and counters. The engine is the source of
	// truth for availability: a slot is registered in the engine exactly
	// when the worker is available. Every engine mutation except Submit's
	// atomic pop happens under mu, so slot-table reads after a pop are
	// always consistent.
	mu        sync.Mutex
	workerIDs []string   // slot → external id
	codes     []hst.Code // slot → reported leaf
	available []bool
	byID      map[string]int
	assigned  int
	rejected  int
	released  int
	// levelCounts[l] counts assignments whose match LCA sat at level l;
	// levelSum is Σ levels for the running mean. Both are fed by Submit and
	// SubmitBatch alike.
	levelCounts []int
	levelSum    int
}

// ServerOption customises server construction.
type ServerOption func(*serverConfig)

type serverConfig struct {
	shards int
}

// WithShards sets the assignment engine's shard count (0 = engine default).
func WithShards(n int) ServerOption {
	return func(c *serverConfig) { c.shards = n }
}

// NewServer builds the infrastructure (grid + HST) and returns a server
// publishing it with the given privacy budget.
func NewServer(region geo.Rect, cols, rows int, eps float64, seed uint64, opts ...ServerOption) (*Server, error) {
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	grid, err := geo.NewGrid(region, cols, rows)
	if err != nil {
		return nil, err
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed).Derive("server-hst"))
	if err != nil {
		return nil, err
	}
	if eps <= 0 {
		return nil, errors.New("platform: epsilon must be positive")
	}
	eng, err := engine.New(tree, cfg.shards)
	if err != nil {
		return nil, err
	}
	return &Server{
		pub: Publication{
			Tree:    tree,
			Region:  region,
			Cols:    cols,
			Rows:    rows,
			Epsilon: eps,
		},
		eng:         eng,
		byID:        map[string]int{},
		levelCounts: make([]int, tree.Depth()+1),
	}, nil
}

// Publication returns the public infrastructure.
func (s *Server) Publication() Publication { return s.pub }

// Engine returns the underlying assignment engine, for monitoring.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Register adds a worker with its obfuscated leaf. Worker ids must be
// unique; use Reregister for location updates. Validation and the engine
// insert happen before any slot-table mutation, so a failed registration
// leaves no half-registered state behind and the id stays free for retry.
func (s *Server) Register(req RegisterRequest) RegisterResponse {
	code := hst.Code(req.Code)
	if err := s.pub.Tree.CheckCode(code); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error()}
	}
	if req.WorkerID == "" {
		return RegisterResponse{OK: false, Reason: "platform: empty worker id"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[req.WorkerID]; dup {
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q already registered", req.WorkerID)}
	}
	slot := len(s.workerIDs)
	if err := s.eng.Insert(code, slot); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error()}
	}
	// A concurrent Submit can pop the new slot as soon as Insert returns,
	// but it reads the tables under mu, which we still hold.
	s.workerIDs = append(s.workerIDs, req.WorkerID)
	s.codes = append(s.codes, code)
	s.available = append(s.available, true)
	s.byID[req.WorkerID] = slot
	return RegisterResponse{OK: true}
}

// Submit assigns an arriving task to the tree-nearest available worker.
func (s *Server) Submit(req TaskRequest) TaskResponse {
	code := hst.Code(req.Code)
	if err := s.pub.Tree.CheckCode(code); err != nil {
		return TaskResponse{Assigned: false, Reason: err.Error()}
	}
	slot, lvl, ok := s.eng.Assign(code)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		s.rejected++
		return TaskResponse{Assigned: false, Reason: "platform: no available workers"}
	}
	s.available[slot] = false
	s.assigned++
	s.levelCounts[lvl]++
	s.levelSum += lvl
	return TaskResponse{Assigned: true, WorkerID: s.workerIDs[slot]}
}

// SubmitBatch assigns a batch of tasks in arrival order through the
// engine's batched API, amortising locking across the batch. The outcome
// is exactly that of submitting the tasks one by one.
func (s *Server) SubmitBatch(req TaskBatchRequest) TaskBatchResponse {
	out := TaskBatchResponse{Results: make([]TaskResponse, len(req.Tasks))}
	// Malformed tasks are answered without touching the engine (mirroring
	// Submit); only the valid ones, in order, form the assignment batch.
	valid := make([]int, 0, len(req.Tasks))
	codes := make([]hst.Code, 0, len(req.Tasks))
	for i, t := range req.Tasks {
		code := hst.Code(t.Code)
		if err := s.pub.Tree.CheckCode(code); err != nil {
			out.Results[i] = TaskResponse{Assigned: false, Reason: err.Error()}
			continue
		}
		valid = append(valid, i)
		codes = append(codes, code)
	}
	slots, lvls := s.eng.AssignBatch(codes)
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, slot := range slots {
		i := valid[k]
		if slot == engine.None {
			s.rejected++
			out.Results[i] = TaskResponse{Assigned: false, Reason: "platform: no available workers"}
			continue
		}
		s.available[slot] = false
		s.assigned++
		s.levelCounts[lvls[k]]++
		s.levelSum += lvls[k]
		out.Results[i] = TaskResponse{Assigned: true, WorkerID: s.workerIDs[slot]}
	}
	return out
}

// Release returns an assigned worker to the available pool, optionally at
// a freshly obfuscated leaf (re-reporting the previous code costs no extra
// privacy budget; a new code reflects a new location report). The paper's
// one-shot model has no releases; a deployed platform needs them for
// workers that complete tasks.
func (s *Server) Release(req ReleaseRequest) RegisterResponse {
	var newCode hst.Code
	if len(req.Code) > 0 {
		newCode = hst.Code(req.Code)
		if err := s.pub.Tree.CheckCode(newCode); err != nil {
			return RegisterResponse{OK: false, Reason: err.Error()}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.byID[req.WorkerID]
	if !ok {
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q not registered", req.WorkerID)}
	}
	if s.available[slot] {
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q is not assigned", req.WorkerID)}
	}
	code := s.codes[slot]
	if newCode != "" {
		code = newCode
	}
	if err := s.eng.Insert(code, slot); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error()}
	}
	s.codes[slot] = code
	s.available[slot] = true
	s.released++
	return RegisterResponse{OK: true}
}

// Stats reports the server's counters.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	mean := 0.0
	if s.assigned > 0 {
		mean = float64(s.levelSum) / float64(s.assigned)
	}
	return StatsResponse{
		RegisteredWorkers: len(s.workerIDs),
		AvailableWorkers:  s.eng.Len(),
		AssignedTasks:     s.assigned,
		RejectedTasks:     s.rejected,
		ReleasedWorkers:   s.released,
		MatchLevelCounts:  append([]int(nil), s.levelCounts...),
		MeanMatchLevel:    mean,
	}
}
