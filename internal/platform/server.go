package platform

import (
	"errors"
	"fmt"
	"sync"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// Server is the untrusted crowdsourcing platform. It sees only obfuscated
// leaf codes and assigns each arriving task to the tree-nearest available
// worker (Alg. 4, trie-indexed so assignment is O(D)).
//
// Server is safe for concurrent use.
type Server struct {
	pub Publication

	mu        sync.Mutex
	index     *hst.LeafIndex
	workerIDs []string   // slot → external id
	codes     []hst.Code // slot → reported leaf
	available []bool
	byID      map[string]int
	assigned  int
	rejected  int
}

// NewServer builds the infrastructure (grid + HST) and returns a server
// publishing it with the given privacy budget.
func NewServer(region geo.Rect, cols, rows int, eps float64, seed uint64) (*Server, error) {
	grid, err := geo.NewGrid(region, cols, rows)
	if err != nil {
		return nil, err
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed).Derive("server-hst"))
	if err != nil {
		return nil, err
	}
	if eps <= 0 {
		return nil, errors.New("platform: epsilon must be positive")
	}
	return &Server{
		pub: Publication{
			Tree:    tree,
			Region:  region,
			Cols:    cols,
			Rows:    rows,
			Epsilon: eps,
		},
		index: hst.NewLeafIndex(tree.Depth()),
		byID:  map[string]int{},
	}, nil
}

// Publication returns the public infrastructure.
func (s *Server) Publication() Publication { return s.pub }

// Register adds a worker with its obfuscated leaf. Worker ids must be
// unique; re-registration is rejected (a real deployment would treat it as
// a location update, which the paper's one-shot model does not cover).
func (s *Server) Register(req RegisterRequest) RegisterResponse {
	code := hst.Code(req.Code)
	if err := s.pub.Tree.CheckCode(code); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error()}
	}
	if req.WorkerID == "" {
		return RegisterResponse{OK: false, Reason: "platform: empty worker id"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[req.WorkerID]; dup {
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q already registered", req.WorkerID)}
	}
	slot := len(s.workerIDs)
	s.workerIDs = append(s.workerIDs, req.WorkerID)
	s.codes = append(s.codes, code)
	s.available = append(s.available, true)
	s.byID[req.WorkerID] = slot
	if err := s.index.Insert(code, slot); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error()}
	}
	return RegisterResponse{OK: true}
}

// Submit assigns an arriving task to the tree-nearest available worker.
func (s *Server) Submit(req TaskRequest) TaskResponse {
	code := hst.Code(req.Code)
	if err := s.pub.Tree.CheckCode(code); err != nil {
		return TaskResponse{Assigned: false, Reason: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, _, ok := s.index.Nearest(code)
	if !ok {
		s.rejected++
		return TaskResponse{Assigned: false, Reason: "platform: no available workers"}
	}
	s.index.Remove(s.codes[slot], slot)
	s.available[slot] = false
	s.assigned++
	return TaskResponse{Assigned: true, WorkerID: s.workerIDs[slot]}
}

// Stats reports the server's counters.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StatsResponse{
		RegisteredWorkers: len(s.workerIDs),
		AvailableWorkers:  s.index.Len(),
		AssignedTasks:     s.assigned,
		RejectedTasks:     s.rejected,
	}
}
