package platform

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/epoch"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// Server is the untrusted crowdsourcing platform. It sees only obfuscated
// leaf codes and assigns each arriving task to the tree-nearest available
// worker (Alg. 4). It is a thin transport wrapper over the sharded
// concurrent assignment engine (internal/engine): the engine holds the
// availability state and answers each task in O(D) with shard-local
// locking, while the server only maps external worker ids to engine slots
// and keeps counters.
//
// Server is safe for concurrent use; Submit calls on disjoint top-level
// HST branches do not contend.
// Core is the assignment state a Server fronts: exactly the engine surface
// the serving layer drives. *engine.Engine satisfies it (the single-node
// deployment), and a cluster coordinator core fans the same calls out
// across node backends — the Server's slot tables, budget accounting, and
// rotation planning run verbatim above either, which is what pins the
// multi-node stack bit-identical to the single-node one.
type Core interface {
	// Identity of the serving epoch.
	Tree() *hst.Tree
	Epoch() int64
	Shards() int
	// Fixed configuration.
	Policy() engine.Policy
	DefaultCapacity() int
	// Monitoring.
	Windows() int64
	Len() int
	CapacityUnits() int
	// Serving operations. Semantics (staleness, retries, tie-breaks) are
	// engine.Engine's; see its method docs.
	Assign(code hst.Code) (id, lcaLevel int, ok bool)
	AssignBatch(codes []hst.Code) (ids, lcaLevels []int)
	InsertEpoch(code hst.Code, id int, epoch int64) error
	InsertCapEpoch(code hst.Code, id, capacity int, epoch int64) error
	AddCapacityEpoch(code hst.Code, id int, epoch int64) error
	Remove(code hst.Code, id int) bool
	RemoveUnits(code hst.Code, id int) (units int, ok bool)
	SwapEpoch(epoch int64, tree *hst.Tree, shards int, inserts []engine.EpochInsert) error
}

// assignErrer is an optional Core extension: a core whose Assign can fail
// for reasons beyond "no worker" (a cluster core with an unreachable
// backend) reports the failure so Submit can answer with a typed error
// instead of a misleading no-workers refusal.
type assignErrer interface {
	AssignErr(code hst.Code) (id, lcaLevel int, ok bool, err error)
}

// seqSwapper is an optional Core extension: a core that can consume the
// next epoch's population as a replayable sequence instead of a
// materialized slice. engine.Engine implements it; Rotate prefers it so a
// large rotation peaks at ~1× the population's memory instead of 2×.
type seqSwapper interface {
	SwapEpochSeq(epoch int64, tree *hst.Tree, shards int, seq func(yield func(engine.EpochInsert) bool)) error
}

// coreAssign runs an assignment through AssignErr when the core offers it.
func coreAssign(c Core, code hst.Code) (id, lcaLevel int, ok bool, err error) {
	if ae, has := c.(assignErrer); has {
		return ae.AssignErr(code)
	}
	id, lcaLevel, ok = c.Assign(code)
	return id, lcaLevel, ok, nil
}

type Server struct {
	eng Core
	// rot owns epoch rotation and per-worker budget accounting. It has its
	// own lock; the server calls into it under mu where slot-table
	// consistency matters.
	rot *epoch.Controller

	// mu guards the slot tables, counters, and the publication (whose tree
	// and epoch change at rotation). The engine is the source of truth for
	// availability: a slot is registered in the engine exactly when the
	// worker is available. Every engine mutation except Submit's atomic pop
	// happens under mu, so slot-table reads after a pop are always
	// consistent.
	mu        sync.Mutex
	pub       Publication
	epoch     int64      // serving epoch; mirrors rot under mu
	workerIDs []string   // slot → external id
	codes     []hst.Code // slot → reported leaf
	states    []workerState
	slotEpoch []int64 // slot → epoch the slot's code was obfuscated under
	// capacity is the slot's declared task capacity and active its
	// outstanding assignments. The engine holds the slot exactly while
	// active < capacity (with capacity−active remaining units), so a pop
	// maps to active++ and a completed task hands one unit back.
	capacity  []int
	active    []int
	byID      map[string]int
	assigned  int
	rejected  int
	released  int
	withdrawn int
	dropped   int // available workers dropped at a rotation for lack of a fresh report
	// levelCounts[l] counts assignments whose match LCA sat at level l;
	// levelSum is Σ levels for the running mean. Both are fed by Submit and
	// SubmitBatch alike. The histogram grows if a rotated tree is deeper.
	levelCounts []int
	levelSum    int
}

// workerState tracks a slot's lifecycle. A worker is in the engine exactly
// when its state is stateAvailable (with capacity−active remaining units).
// Slots are registration epochs: a worker that withdraws and registers back
// gets a fresh slot, and the old one is retired for good — so a Submit
// holding a popped slot can always tell whether the stint that slot belongs
// to is still the live one.
type workerState uint8

const (
	stateAvailable    workerState = iota
	stateAssigned                 // at full capacity, awaiting a Release
	stateGone                     // withdrew; stint over, id may Register back
	stateAssignedGone             // withdrew mid-assignment; stint ends at the last Release
	stateRetired                  // superseded by a newer registration of the same id
	stateParked                   // lifetime ε budget exhausted; terminal
)

// stintOver reports whether a popped slot's stint was closed (by a
// Withdraw, a rotation, or a parking, possibly followed by a
// re-registration) while the pop was in flight: the pop is stale and must
// be retried — the worker was told it is offline (or got a fresh slot in
// the new epoch), and acting on the pop could double-assign it.
// stateAssignedGone closes the stint too: a capacitated worker's spare
// units were withdrawn from the pool while its assignments run out, so a
// pop that raced the withdrawal must not hand it new work.
func stintOver(st workerState) bool {
	return st == stateGone || st == stateRetired || st == stateParked || st == stateAssignedGone
}

// ServerOption customises server construction.
type ServerOption func(*serverConfig)

type serverConfig struct {
	shards     int
	lifetime   float64
	policy     engine.Policy
	defaultCap int
	tree       *hst.Tree
	core       Core
}

// WithShards sets the assignment engine's shard count (0 = engine default).
func WithShards(n int) ServerOption {
	return func(c *serverConfig) { c.shards = n }
}

// WithPolicy selects the assignment policy the server's engine runs (nil
// keeps the paper-faithful greedy default).
func WithPolicy(p engine.Policy) ServerOption {
	return func(c *serverConfig) { c.policy = p }
}

// WithDefaultCapacity sets the per-worker capacity a registration without
// an explicit one receives (default 1). Values above 1 require a
// capacity-aware policy.
func WithDefaultCapacity(n int) ServerOption {
	return func(c *serverConfig) { c.defaultCap = n }
}

// WithTree publishes the given pre-built HST instead of deriving one from
// the server seed. The tree must cover exactly the predefined grid
// (cols×rows points). Deployments restoring a persisted epoch — and
// harnesses that must share one published tree across stacks, like the
// simulator's cross-driver comparisons — inject it here; epoch rotations
// still derive their fresh trees from the server seed.
func WithTree(t *hst.Tree) ServerOption {
	return func(c *serverConfig) { c.tree = t }
}

// WithCore serves from the given assignment core instead of constructing
// an in-process engine. The core's tree becomes the publication (it must
// cover the server grid); WithShards, WithPolicy, and WithDefaultCapacity
// are ignored — those knobs were fixed when the core was built. The
// cluster coordinator uses this to put the whole serving layer (slot
// tables, budget accounting, rotation planning) in front of a fanned-out
// node set.
func WithCore(c Core) ServerOption {
	return func(cfg *serverConfig) { cfg.core = c }
}

// WithLifetimeBudget enforces a per-worker lifetime ε budget: every fresh
// obfuscated report a worker submits (Register, Reregister, Release with a
// new code, rotation re-reports) spends the publication's ε under
// sequential composition, and a worker whose budget cannot afford another
// report is parked — permanently retired from serving — instead of being
// silently re-noised past its guarantee. 0 (the default) disables
// accounting.
func WithLifetimeBudget(lifetime float64) ServerOption {
	return func(c *serverConfig) { c.lifetime = lifetime }
}

// NewServer builds the infrastructure (grid + HST) and returns a server
// publishing it with the given privacy budget.
func NewServer(region geo.Rect, cols, rows int, eps float64, seed uint64, opts ...ServerOption) (*Server, error) {
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	grid, err := geo.NewGrid(region, cols, rows)
	if err != nil {
		return nil, err
	}
	tree := cfg.tree
	if cfg.core != nil {
		// An injected core owns the tree (and every engine knob); the server
		// publishes what the core serves.
		tree = cfg.core.Tree()
	} else if tree == nil {
		tree, err = hst.Build(grid.Points(), rng.New(seed).Derive("server-hst"))
		if err != nil {
			return nil, err
		}
	}
	if tree.NumPoints() != grid.Len() {
		return nil, fmt.Errorf("platform: injected tree covers %d points, grid has %d",
			tree.NumPoints(), grid.Len())
	}
	if eps <= 0 {
		return nil, errors.New("platform: epsilon must be positive")
	}
	core := cfg.core
	if core == nil {
		var engOpts []engine.Option
		if cfg.policy != nil {
			engOpts = append(engOpts, engine.WithPolicy(cfg.policy))
		}
		if cfg.defaultCap != 0 {
			engOpts = append(engOpts, engine.WithDefaultCapacity(cfg.defaultCap))
		}
		core, err = engine.NewWithOptions(tree, cfg.shards, engOpts...)
		if err != nil {
			return nil, err
		}
	}
	rot, err := epoch.NewController(epoch.Config{
		Tree:     tree,
		Seed:     seed,
		Epsilon:  eps,
		Lifetime: cfg.lifetime,
	})
	if err != nil {
		return nil, err
	}
	first := core.Epoch()
	return &Server{
		pub: Publication{
			Tree:    tree,
			Region:  region,
			Cols:    cols,
			Rows:    rows,
			Epsilon: eps,
			Epoch:   first,
		},
		eng:         core,
		rot:         rot,
		epoch:       first,
		byID:        map[string]int{},
		levelCounts: make([]int, tree.Depth()+1),
	}, nil
}

// Publication returns the public infrastructure of the serving epoch.
// After a rotation it carries the new tree and epoch id; clients holding
// an older publication get their reports refused as stale.
func (s *Server) Publication() Publication {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pub
}

// Core returns the assignment core the server fronts.
func (s *Server) Core() Core { return s.eng }

// Engine returns the underlying in-process assignment engine, or nil when
// the server fronts an injected core (a cluster coordinator) instead.
//
// Deprecated: use Core; Engine exists for single-node monitoring callers.
func (s *Server) Engine() *engine.Engine {
	e, _ := s.eng.(*engine.Engine)
	return e
}

// staleEpochReason formats the refusal for a report or task obfuscated
// under a rotated-away publication.
func staleEpochReason(got, cur int64) string {
	return fmt.Sprintf("platform: stale epoch %d (serving %d); re-fetch the publication", got, cur)
}

// parkedReason formats the refusal for a worker whose lifetime budget is
// exhausted.
func parkedReason(workerID string) string {
	return fmt.Sprintf("platform: worker %q lifetime budget exhausted; parked", workerID)
}

// Register adds a worker with its obfuscated leaf. Worker ids must be
// unique among active workers; use Reregister for location updates. A
// worker that previously withdrew while available may register again under
// the same id with a freshly obfuscated code. Every registration is a
// fresh report: with a lifetime budget configured it spends the
// publication's ε, and an exhausted worker is refused with Parked set.
// Validation and the engine insert happen before any slot-table mutation,
// so a failed registration leaves no half-registered state behind and the
// id stays free for retry.
func (s *Server) Register(req RegisterRequest) RegisterResponse {
	if req.WorkerID == "" {
		return RegisterResponse{OK: false, Reason: "platform: empty worker id", Err: badRequestError("platform: empty worker id")}
	}
	code := hst.Code(req.Code)
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Epoch != 0 && req.Epoch != s.epoch {
		e := staleEpochError(req.Epoch, s.epoch)
		return RegisterResponse{OK: false, Reason: e.Message, Err: e}
	}
	if err := s.pub.Tree.CheckCode(code); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error(), Err: badRequestError(err.Error())}
	}
	// A withdrawn worker coming back online starts a fresh stint in a
	// fresh slot; the old slot is retired below, once the insert succeeded,
	// so a stale pop of the old stint still in flight sees stateRetired.
	revive := -1
	if old, dup := s.byID[req.WorkerID]; dup {
		switch s.states[old] {
		case stateGone:
			revive = old
		case stateParked:
			return RegisterResponse{OK: false, Parked: true, Reason: parkedReason(req.WorkerID), Err: parkedError(req.WorkerID)}
		default:
			reason := fmt.Sprintf("platform: worker %q already registered", req.WorkerID)
			return RegisterResponse{OK: false, Reason: reason, Err: conflictError(reason)}
		}
	}
	// Resolve the slot's capacity exactly as the engine will: the server's
	// accounting (active vs capacity) must agree with the engine's units.
	// Range validation happens before the budget spend below — a refused
	// registration must not burn lifetime ε.
	if req.Capacity < 0 || req.Capacity > math.MaxInt32 {
		reason := fmt.Sprintf("platform: capacity %d out of range", req.Capacity)
		return RegisterResponse{OK: false, Reason: reason, Err: badRequestError(reason)}
	}
	capacity := req.Capacity
	if capacity == 0 {
		capacity = s.eng.DefaultCapacity()
	}
	if !s.eng.Policy().CapacityAware() {
		capacity = 1
	}
	if err := s.rot.Spend(req.WorkerID); err != nil {
		return RegisterResponse{OK: false, Parked: true, Reason: parkedReason(req.WorkerID), Err: parkedError(req.WorkerID)}
	}
	slot := len(s.workerIDs)
	if err := s.eng.InsertCapEpoch(code, slot, capacity, s.epoch); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error(), Err: AsError(err, s.epoch)}
	}
	// A concurrent Submit can pop the new slot as soon as Insert returns,
	// but it reads the tables under mu, which we still hold.
	s.workerIDs = append(s.workerIDs, req.WorkerID)
	s.codes = append(s.codes, code)
	s.states = append(s.states, stateAvailable)
	s.slotEpoch = append(s.slotEpoch, s.epoch)
	s.capacity = append(s.capacity, capacity)
	s.active = append(s.active, 0)
	s.byID[req.WorkerID] = slot
	if revive >= 0 {
		s.states[revive] = stateRetired
	}
	s.rot.Observe(code)
	return RegisterResponse{OK: true, Epoch: s.epoch}
}

// Submit assigns an arriving task to the tree-nearest available worker.
// A task tagged with the epoch its code was obfuscated under is refused as
// stale once the server has rotated past it — an epoch-N task must never
// be paired with an epoch-N+1 worker, since their codes live in different
// trees.
func (s *Server) Submit(req TaskRequest) TaskResponse {
	code := hst.Code(req.Code)
	// Validate against the engine's current tree (an atomic read — the
	// locked publication may be mid-rotation); the engine re-validates
	// internally, so a swap between here and the pop cannot corrupt it.
	if err := s.eng.Tree().CheckCode(code); err != nil {
		return TaskResponse{Assigned: false, Reason: err.Error(), Err: badRequestError(err.Error())}
	}
	slot, lvl, ok, aerr := coreAssign(s.eng, code)
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Epoch != 0 && req.Epoch != s.epoch {
		// The pop (if any) came from the fresh epoch; the task's code is
		// from a rotated-away one. Undo the pop — unless the slot's stint
		// closed in flight, in which case there is nothing to restore.
		if ok && !stintOver(s.states[slot]) {
			// The slot was popped live, so its code is valid for the
			// serving epoch; returning the unit cannot fail.
			s.eng.AddCapacityEpoch(s.codes[slot], slot, s.epoch)
		}
		s.rejected++
		e := staleEpochError(req.Epoch, s.epoch)
		return TaskResponse{Assigned: false, Reason: e.Message, Err: e}
	}
	// A pop whose stint was closed while in flight (the worker withdrew or
	// was rotated/parked, its slot superseded) is stale: that assignment
	// was never confirmed to anyone, so retry. Pops under mu cannot go
	// stale again — stint transitions all happen under mu.
	for ok && stintOver(s.states[slot]) {
		slot, lvl, ok, aerr = coreAssign(s.eng, code)
	}
	if aerr != nil {
		// A backend failure is not "no workers": report it as such so the
		// client can retry rather than give up on the task.
		s.rejected++
		e := AsError(aerr, s.epoch)
		return TaskResponse{Assigned: false, Reason: e.Message, Err: e}
	}
	if !ok {
		s.rejected++
		e := noWorkersError()
		return TaskResponse{Assigned: false, Reason: e.Message, Err: e}
	}
	// The retry loop above guarantees the stint is live; a popped slot is
	// stateAvailable and leaves the pool only when this pop consumed its
	// last capacity unit.
	s.active[slot]++
	if s.active[slot] >= s.capacity[slot] {
		s.states[slot] = stateAssigned
	}
	s.assigned++
	s.bumpLevel(lvl)
	return TaskResponse{Assigned: true, WorkerID: s.workerIDs[slot], Epoch: s.slotEpoch[slot]}
}

// bumpLevel records one assignment's LCA level, growing the histogram when
// a rotated tree is deeper than any before it.
func (s *Server) bumpLevel(lvl int) {
	for lvl >= len(s.levelCounts) {
		s.levelCounts = append(s.levelCounts, 0)
	}
	s.levelCounts[lvl]++
	s.levelSum += lvl
}

// SubmitBatch assigns a batch of tasks in arrival order through the
// engine's batched API, amortising locking across the batch. The outcome
// is exactly that of submitting the tasks one by one.
func (s *Server) SubmitBatch(req TaskBatchRequest) TaskBatchResponse {
	out := TaskBatchResponse{Results: make([]TaskResponse, len(req.Tasks))}
	// Malformed tasks are answered without touching the engine (mirroring
	// Submit); only the valid ones, in order, form the assignment batch.
	tree, engEpoch := s.eng.Tree(), s.eng.Epoch()
	staleEarly := 0
	valid := make([]int, 0, len(req.Tasks))
	codes := make([]hst.Code, 0, len(req.Tasks))
	for i, t := range req.Tasks {
		code := hst.Code(t.Code)
		if err := tree.CheckCode(code); err != nil {
			out.Results[i] = TaskResponse{Assigned: false, Reason: err.Error(), Err: badRequestError(err.Error())}
			continue
		}
		// Epoch-stale tasks are refused up front, before the batch pops
		// anything: letting them pop-and-undo would hand later tasks in
		// the batch different workers than sequential Submit calls would.
		// (A rotation racing the batch is re-checked under mu below.)
		if t.Epoch != 0 && t.Epoch != engEpoch {
			e := staleEpochError(t.Epoch, engEpoch)
			out.Results[i] = TaskResponse{Assigned: false, Reason: e.Message, Err: e}
			staleEarly++
			continue
		}
		valid = append(valid, i)
		codes = append(codes, code)
	}
	slots, lvls := s.eng.AssignBatch(codes)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rejected += staleEarly
	for k, slot := range slots {
		i := valid[k]
		lvl := lvls[k]
		// Epoch-tagged tasks whose publication has been rotated away are
		// refused and their pop undone, exactly as in Submit.
		if e := req.Tasks[i].Epoch; e != 0 && e != s.epoch {
			if slot != engine.None && !stintOver(s.states[slot]) {
				s.eng.AddCapacityEpoch(s.codes[slot], slot, s.epoch)
			}
			s.rejected++
			se := staleEpochError(e, s.epoch)
			out.Results[i] = TaskResponse{Assigned: false, Reason: se.Message, Err: se}
			continue
		}
		// Stale pops (see Submit) are retried; under mu no retry can go
		// stale again.
		var aerr error
		for slot != engine.None && stintOver(s.states[slot]) {
			var ok bool
			if slot, lvl, ok, aerr = coreAssign(s.eng, codes[k]); !ok {
				slot = engine.None
			}
		}
		if aerr != nil {
			s.rejected++
			e := AsError(aerr, s.epoch)
			out.Results[i] = TaskResponse{Assigned: false, Reason: e.Message, Err: e}
			continue
		}
		if slot == engine.None {
			s.rejected++
			e := noWorkersError()
			out.Results[i] = TaskResponse{Assigned: false, Reason: e.Message, Err: e}
			continue
		}
		s.active[slot]++
		if s.active[slot] >= s.capacity[slot] {
			s.states[slot] = stateAssigned
		}
		s.assigned++
		s.bumpLevel(lvl)
		out.Results[i] = TaskResponse{Assigned: true, WorkerID: s.workerIDs[slot], Epoch: s.slotEpoch[slot]}
	}
	return out
}

// Release records a completed task: one capacity unit returns to the pool,
// optionally at a freshly obfuscated leaf. Re-reporting the previous code
// costs no extra privacy budget (it is post-processing of an already-
// released report), but is only possible while the epoch it was obfuscated
// under is still being served; after a rotation the worker must supply a
// fresh code drawn under the new publication, which — like every fresh
// report — spends ε against its lifetime budget and can park it. A
// capacitated worker that still has units in the pool and re-reports a new
// code moves wholesale: its remaining units follow the fresh leaf. The
// paper's one-shot model has no releases; a deployed platform needs them
// for workers that complete tasks.
func (s *Server) Release(req ReleaseRequest) RegisterResponse {
	var newCode hst.Code
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(req.Code) > 0 {
		newCode = hst.Code(req.Code)
		if req.Epoch != 0 && req.Epoch != s.epoch {
			e := staleEpochError(req.Epoch, s.epoch)
			return RegisterResponse{OK: false, Reason: e.Message, Err: e}
		}
		if err := s.pub.Tree.CheckCode(newCode); err != nil {
			return RegisterResponse{OK: false, Reason: err.Error(), Err: badRequestError(err.Error())}
		}
	}
	slot, ok := s.byID[req.WorkerID]
	if !ok {
		reason := fmt.Sprintf("platform: worker %q not registered", req.WorkerID)
		return RegisterResponse{OK: false, Reason: reason, Err: badRequestError(reason)}
	}
	switch s.states[slot] {
	case stateAvailable:
		if s.active[slot] == 0 {
			reason := fmt.Sprintf("platform: worker %q is not assigned", req.WorkerID)
			return RegisterResponse{OK: false, Reason: reason, Err: conflictError(reason)}
		}
		// A capacitated worker with spare units completing one of its tasks:
		// fall through to the completion path below.
	case stateGone:
		reason := fmt.Sprintf("platform: worker %q has withdrawn", req.WorkerID)
		return RegisterResponse{OK: false, Reason: reason, Err: conflictError(reason)}
	case stateParked:
		return RegisterResponse{OK: false, Parked: true, Reason: parkedReason(req.WorkerID), Err: parkedError(req.WorkerID)}
	case stateAssignedGone:
		// The task is done but the worker had withdrawn mid-assignment: the
		// unit does not return to the pool, and once the last outstanding
		// task completes the worker is simply offline — free to Register
		// back later.
		if s.active[slot] > 0 {
			s.active[slot]--
		}
		if s.active[slot] == 0 {
			s.states[slot] = stateGone
		}
		reason := fmt.Sprintf("platform: worker %q has withdrawn", req.WorkerID)
		return RegisterResponse{OK: false, Reason: reason, Err: conflictError(reason)}
	}
	code := s.codes[slot]
	inPool := s.states[slot] == stateAvailable // spare units live in the engine
	if newCode != "" {
		code = newCode
		if err := s.rot.Spend(req.WorkerID); err != nil {
			// The worker finished its task but cannot afford the fresh
			// report: park it rather than re-noise past its guarantee,
			// pulling any spare units out of the pool.
			if inPool {
				s.eng.Remove(s.codes[slot], slot)
			}
			if s.active[slot] > 0 {
				s.active[slot]--
			}
			s.states[slot] = stateParked
			return RegisterResponse{OK: false, Parked: true, Reason: parkedReason(req.WorkerID), Err: parkedError(req.WorkerID)}
		}
	} else if s.slotEpoch[slot] != s.epoch {
		reason := fmt.Sprintf(
			"platform: worker %q report is from epoch %d (serving %d); a fresh report is required",
			req.WorkerID, s.slotEpoch[slot], s.epoch)
		return RegisterResponse{OK: false, Reason: reason,
			Err: &Error{Code: CodeStaleEpoch, Message: reason, Epoch: s.epoch, Retryable: true}}
	}
	// Hand the completed unit back. Same code: one unit rejoins in place
	// (re-inserting the slot when this was its last active task). New code:
	// the worker moves wholesale, spare units included — sized by what the
	// engine actually still pooled, not by capacity−active: a concurrent
	// Submit may have popped a unit it has not recorded under mu yet, and
	// re-deriving the count here would resurrect that unit and let the
	// worker serve beyond its capacity.
	if inPool && code == s.codes[slot] {
		if err := s.eng.AddCapacityEpoch(code, slot, s.epoch); err != nil {
			return RegisterResponse{OK: false, Reason: err.Error(), Err: AsError(err, s.epoch)}
		}
	} else {
		pooled := 0
		if inPool {
			pooled, _ = s.eng.RemoveUnits(s.codes[slot], slot)
		}
		if err := s.eng.InsertCapEpoch(code, slot, pooled+1, s.epoch); err != nil {
			return RegisterResponse{OK: false, Reason: err.Error(), Err: AsError(err, s.epoch)}
		}
	}
	s.active[slot]--
	s.codes[slot] = code
	s.slotEpoch[slot] = s.epoch
	s.states[slot] = stateAvailable
	s.released++
	if newCode != "" {
		s.rot.Observe(newCode)
	}
	return RegisterResponse{OK: true, Epoch: s.epoch}
}

// Withdraw takes a worker offline. An available worker leaves the pool
// immediately; an assigned worker finishes its current task but will not
// return to the pool (its Release is rejected, and that rejected Release
// marks the stint over). Withdrawn workers may Register again later with a
// freshly obfuscated code — churn costs no protocol round-trips beyond the
// re-registration itself.
func (s *Server) Withdraw(req WithdrawRequest) RegisterResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.byID[req.WorkerID]
	if !ok {
		reason := fmt.Sprintf("platform: worker %q not registered", req.WorkerID)
		return RegisterResponse{OK: false, Reason: reason, Err: badRequestError(reason)}
	}
	switch s.states[slot] {
	case stateGone, stateAssignedGone:
		reason := fmt.Sprintf("platform: worker %q has already withdrawn", req.WorkerID)
		return RegisterResponse{OK: false, Reason: reason, Err: conflictError(reason)}
	case stateParked:
		return RegisterResponse{OK: false, Parked: true, Reason: parkedReason(req.WorkerID), Err: parkedError(req.WorkerID)}
	case stateAssigned:
		s.states[slot] = stateAssignedGone
	default: // stateAvailable
		// The worker observed itself available and is told it is offline,
		// so the withdrawal must win every race: when a concurrent Submit
		// popped the worker but has not recorded the assignment yet
		// (eng.Remove fails), marking the stint over makes that pop stale
		// and the Submit retries another worker. A capacitated worker with
		// outstanding tasks keeps serving them (its spare units leave the
		// pool now) and goes fully offline at its last Release.
		s.eng.Remove(s.codes[slot], slot)
		if s.active[slot] > 0 {
			s.states[slot] = stateAssignedGone
		} else {
			s.states[slot] = stateGone
		}
	}
	s.withdrawn++
	return RegisterResponse{OK: true}
}

// Stats reports the server's counters.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	mean := 0.0
	if s.assigned > 0 {
		mean = float64(s.levelSum) / float64(s.assigned)
	}
	rs := s.rot.Stats()
	policy := s.eng.Policy().Name()
	return StatsResponse{
		// Distinct worker ids, not slots: re-registrations after a
		// withdrawal retire the old slot rather than reuse it.
		RegisteredWorkers: len(s.byID),
		AvailableWorkers:  s.eng.Len(),
		Policy:            policy,
		PolicyCounters:    map[string]int{policy: s.assigned},
		DefaultCapacity:   s.eng.DefaultCapacity(),
		CapacityUnits:     s.eng.CapacityUnits(),
		BatchWindows:      s.eng.Windows(),
		AssignedTasks:     s.assigned,
		RejectedTasks:     s.rejected,
		ReleasedWorkers:   s.released,
		WithdrawnWorkers:  s.withdrawn,
		MatchLevelCounts:  append([]int(nil), s.levelCounts...),
		MeanMatchLevel:    mean,
		Epoch:             s.epoch,
		Rotations:         rs.Rotations,
		RotatedWorkers:    rs.Rotated,
		ParkedWorkers:     rs.Parked,
		DroppedWorkers:    s.dropped,
		BudgetLimit:       rs.Limit,
		BudgetSpentTotal:  rs.SpentTotal,
		BudgetedAgents:    rs.Agents,
	}
}
