package platform

import (
	"errors"
	"fmt"
	"sync"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

// Server is the untrusted crowdsourcing platform. It sees only obfuscated
// leaf codes and assigns each arriving task to the tree-nearest available
// worker (Alg. 4). It is a thin transport wrapper over the sharded
// concurrent assignment engine (internal/engine): the engine holds the
// availability state and answers each task in O(D) with shard-local
// locking, while the server only maps external worker ids to engine slots
// and keeps counters.
//
// Server is safe for concurrent use; Submit calls on disjoint top-level
// HST branches do not contend.
type Server struct {
	pub Publication
	eng *engine.Engine

	// mu guards the slot tables and counters. The engine is the source of
	// truth for availability: a slot is registered in the engine exactly
	// when the worker is available. Every engine mutation except Submit's
	// atomic pop happens under mu, so slot-table reads after a pop are
	// always consistent.
	mu        sync.Mutex
	workerIDs []string   // slot → external id
	codes     []hst.Code // slot → reported leaf
	states    []workerState
	byID      map[string]int
	assigned  int
	rejected  int
	released  int
	withdrawn int
	// levelCounts[l] counts assignments whose match LCA sat at level l;
	// levelSum is Σ levels for the running mean. Both are fed by Submit and
	// SubmitBatch alike.
	levelCounts []int
	levelSum    int
}

// workerState tracks a slot's lifecycle. A worker is in the engine exactly
// when its state is stateAvailable. Slots are registration epochs: a
// worker that withdraws and registers back gets a fresh slot, and the old
// one is retired for good — so a Submit holding a popped slot can always
// tell whether the stint that slot belongs to is still the live one.
type workerState uint8

const (
	stateAvailable    workerState = iota
	stateAssigned                 // popped by a task, awaiting Release
	stateGone                     // withdrew; stint over, id may Register back
	stateAssignedGone             // withdrew mid-assignment; stint ends at Release
	stateRetired                  // superseded by a newer registration of the same id
)

// stintOver reports whether a popped slot's stint was closed (by a
// Withdraw, possibly followed by a re-registration) while the pop was in
// flight: the pop is stale and must be retried — the worker was told it is
// offline, and acting on the pop could double-assign its new registration.
func stintOver(st workerState) bool { return st == stateGone || st == stateRetired }

// ServerOption customises server construction.
type ServerOption func(*serverConfig)

type serverConfig struct {
	shards int
}

// WithShards sets the assignment engine's shard count (0 = engine default).
func WithShards(n int) ServerOption {
	return func(c *serverConfig) { c.shards = n }
}

// NewServer builds the infrastructure (grid + HST) and returns a server
// publishing it with the given privacy budget.
func NewServer(region geo.Rect, cols, rows int, eps float64, seed uint64, opts ...ServerOption) (*Server, error) {
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	grid, err := geo.NewGrid(region, cols, rows)
	if err != nil {
		return nil, err
	}
	tree, err := hst.Build(grid.Points(), rng.New(seed).Derive("server-hst"))
	if err != nil {
		return nil, err
	}
	if eps <= 0 {
		return nil, errors.New("platform: epsilon must be positive")
	}
	eng, err := engine.New(tree, cfg.shards)
	if err != nil {
		return nil, err
	}
	return &Server{
		pub: Publication{
			Tree:    tree,
			Region:  region,
			Cols:    cols,
			Rows:    rows,
			Epsilon: eps,
		},
		eng:         eng,
		byID:        map[string]int{},
		levelCounts: make([]int, tree.Depth()+1),
	}, nil
}

// Publication returns the public infrastructure.
func (s *Server) Publication() Publication { return s.pub }

// Engine returns the underlying assignment engine, for monitoring.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Register adds a worker with its obfuscated leaf. Worker ids must be
// unique among active workers; use Reregister for location updates. A
// worker that previously withdrew while available may register again under
// the same id with a freshly obfuscated code. Validation and the engine
// insert happen before any slot-table mutation, so a failed registration
// leaves no half-registered state behind and the id stays free for retry.
func (s *Server) Register(req RegisterRequest) RegisterResponse {
	code := hst.Code(req.Code)
	if err := s.pub.Tree.CheckCode(code); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error()}
	}
	if req.WorkerID == "" {
		return RegisterResponse{OK: false, Reason: "platform: empty worker id"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// A withdrawn worker coming back online starts a fresh stint in a
	// fresh slot; the old slot is retired below, once the insert succeeded,
	// so a stale pop of the old stint still in flight sees stateRetired.
	revive := -1
	if old, dup := s.byID[req.WorkerID]; dup {
		if s.states[old] != stateGone {
			return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q already registered", req.WorkerID)}
		}
		revive = old
	}
	slot := len(s.workerIDs)
	if err := s.eng.Insert(code, slot); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error()}
	}
	// A concurrent Submit can pop the new slot as soon as Insert returns,
	// but it reads the tables under mu, which we still hold.
	s.workerIDs = append(s.workerIDs, req.WorkerID)
	s.codes = append(s.codes, code)
	s.states = append(s.states, stateAvailable)
	s.byID[req.WorkerID] = slot
	if revive >= 0 {
		s.states[revive] = stateRetired
	}
	return RegisterResponse{OK: true}
}

// Submit assigns an arriving task to the tree-nearest available worker.
func (s *Server) Submit(req TaskRequest) TaskResponse {
	code := hst.Code(req.Code)
	if err := s.pub.Tree.CheckCode(code); err != nil {
		return TaskResponse{Assigned: false, Reason: err.Error()}
	}
	slot, lvl, ok := s.eng.Assign(code)
	s.mu.Lock()
	defer s.mu.Unlock()
	// A pop whose stint was closed while in flight (the worker withdrew,
	// its Release was rejected, and it possibly registered back into a new
	// slot) is stale: that assignment was never confirmed to anyone, so
	// retry. Pops under mu cannot go stale again — stint transitions all
	// happen under mu.
	for ok && stintOver(s.states[slot]) {
		slot, lvl, ok = s.eng.Assign(code)
	}
	if !ok {
		s.rejected++
		return TaskResponse{Assigned: false, Reason: "platform: no available workers"}
	}
	// The retry loop above guarantees the stint is live, and a popped slot
	// cannot be in any other live state than stateAvailable.
	s.states[slot] = stateAssigned
	s.assigned++
	s.levelCounts[lvl]++
	s.levelSum += lvl
	return TaskResponse{Assigned: true, WorkerID: s.workerIDs[slot]}
}

// SubmitBatch assigns a batch of tasks in arrival order through the
// engine's batched API, amortising locking across the batch. The outcome
// is exactly that of submitting the tasks one by one.
func (s *Server) SubmitBatch(req TaskBatchRequest) TaskBatchResponse {
	out := TaskBatchResponse{Results: make([]TaskResponse, len(req.Tasks))}
	// Malformed tasks are answered without touching the engine (mirroring
	// Submit); only the valid ones, in order, form the assignment batch.
	valid := make([]int, 0, len(req.Tasks))
	codes := make([]hst.Code, 0, len(req.Tasks))
	for i, t := range req.Tasks {
		code := hst.Code(t.Code)
		if err := s.pub.Tree.CheckCode(code); err != nil {
			out.Results[i] = TaskResponse{Assigned: false, Reason: err.Error()}
			continue
		}
		valid = append(valid, i)
		codes = append(codes, code)
	}
	slots, lvls := s.eng.AssignBatch(codes)
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, slot := range slots {
		i := valid[k]
		lvl := lvls[k]
		// Stale pops (see Submit) are retried; under mu no retry can go
		// stale again.
		for slot != engine.None && stintOver(s.states[slot]) {
			var ok bool
			if slot, lvl, ok = s.eng.Assign(codes[k]); !ok {
				slot = engine.None
			}
		}
		if slot == engine.None {
			s.rejected++
			out.Results[i] = TaskResponse{Assigned: false, Reason: "platform: no available workers"}
			continue
		}
		s.states[slot] = stateAssigned
		s.assigned++
		s.levelCounts[lvl]++
		s.levelSum += lvl
		out.Results[i] = TaskResponse{Assigned: true, WorkerID: s.workerIDs[slot]}
	}
	return out
}

// Release returns an assigned worker to the available pool, optionally at
// a freshly obfuscated leaf (re-reporting the previous code costs no extra
// privacy budget; a new code reflects a new location report). The paper's
// one-shot model has no releases; a deployed platform needs them for
// workers that complete tasks.
func (s *Server) Release(req ReleaseRequest) RegisterResponse {
	var newCode hst.Code
	if len(req.Code) > 0 {
		newCode = hst.Code(req.Code)
		if err := s.pub.Tree.CheckCode(newCode); err != nil {
			return RegisterResponse{OK: false, Reason: err.Error()}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.byID[req.WorkerID]
	if !ok {
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q not registered", req.WorkerID)}
	}
	switch s.states[slot] {
	case stateAvailable:
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q is not assigned", req.WorkerID)}
	case stateGone:
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q has withdrawn", req.WorkerID)}
	case stateAssignedGone:
		// The task is done but the worker had withdrawn mid-assignment: it
		// does not return to the pool, yet the completion means it is now
		// simply offline — free to Register back later.
		s.states[slot] = stateGone
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q has withdrawn", req.WorkerID)}
	}
	code := s.codes[slot]
	if newCode != "" {
		code = newCode
	}
	if err := s.eng.Insert(code, slot); err != nil {
		return RegisterResponse{OK: false, Reason: err.Error()}
	}
	s.codes[slot] = code
	s.states[slot] = stateAvailable
	s.released++
	return RegisterResponse{OK: true}
}

// Withdraw takes a worker offline. An available worker leaves the pool
// immediately; an assigned worker finishes its current task but will not
// return to the pool (its Release is rejected, and that rejected Release
// marks the stint over). Withdrawn workers may Register again later with a
// freshly obfuscated code — churn costs no protocol round-trips beyond the
// re-registration itself.
func (s *Server) Withdraw(req WithdrawRequest) RegisterResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.byID[req.WorkerID]
	if !ok {
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q not registered", req.WorkerID)}
	}
	switch s.states[slot] {
	case stateGone, stateAssignedGone:
		return RegisterResponse{OK: false, Reason: fmt.Sprintf("platform: worker %q has already withdrawn", req.WorkerID)}
	case stateAssigned:
		s.states[slot] = stateAssignedGone
	default: // stateAvailable
		// The worker observed itself available and is told it is offline,
		// so the withdrawal must win every race: when a concurrent Submit
		// popped the worker but has not recorded the assignment yet
		// (eng.Remove fails), marking the stint over makes that pop stale
		// and the Submit retries another worker.
		s.eng.Remove(s.codes[slot], slot)
		s.states[slot] = stateGone
	}
	s.withdrawn++
	return RegisterResponse{OK: true}
}

// Stats reports the server's counters.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	mean := 0.0
	if s.assigned > 0 {
		mean = float64(s.levelSum) / float64(s.assigned)
	}
	return StatsResponse{
		// Distinct worker ids, not slots: re-registrations after a
		// withdrawal retire the old slot rather than reuse it.
		RegisteredWorkers: len(s.byID),
		AvailableWorkers:  s.eng.Len(),
		AssignedTasks:     s.assigned,
		RejectedTasks:     s.rejected,
		ReleasedWorkers:   s.released,
		WithdrawnWorkers:  s.withdrawn,
		MatchLevelCounts:  append([]int(nil), s.levelCounts...),
		MeanMatchLevel:    mean,
	}
}
