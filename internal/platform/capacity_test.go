package platform

import (
	"strings"
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/workload"
)

// newCapServer builds a server running the given policy with the given
// default capacity.
func newCapServer(t testing.TB, opts ...ServerOption) *Server {
	t.Helper()
	s, err := NewServer(workload.SyntheticRegion, 8, 8, 0.6, 42, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// leaf returns a real leaf code of the server's published tree.
func leaf(s *Server, i int) []byte {
	return []byte(s.Publication().Tree.CodeOf(i))
}

func TestCapacityRequiresCapacityAwarePolicy(t *testing.T) {
	if _, err := NewServer(workload.SyntheticRegion, 8, 8, 0.6, 42, WithDefaultCapacity(3)); err == nil {
		t.Error("default capacity 3 accepted under the greedy default policy")
	}
	// Greedy servers clamp per-registration capacities to 1.
	s := newCapServer(t)
	if r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 0), Capacity: 4}); !r.OK {
		t.Fatal(r.Reason)
	}
	if st := s.Stats(); st.CapacityUnits != 1 || st.Policy != "greedy" {
		t.Fatalf("stats %+v, want 1 clamped unit under greedy", st)
	}
}

func TestCapacitatedWorkerServesSeveralTasks(t *testing.T) {
	s := newCapServer(t, WithPolicy(engine.CapacityGreedy()), WithDefaultCapacity(2))
	if r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 0)}); !r.OK {
		t.Fatal(r.Reason)
	}
	if st := s.Stats(); st.AvailableWorkers != 1 || st.CapacityUnits != 2 || st.DefaultCapacity != 2 {
		t.Fatalf("stats %+v", st)
	}
	// Two submissions land on the same worker; the third finds the pool dry.
	for i := 0; i < 2; i++ {
		resp := s.Submit(TaskRequest{Code: leaf(s, 0)})
		if !resp.Assigned || resp.WorkerID != "w" {
			t.Fatalf("submit %d: %+v", i, resp)
		}
	}
	if resp := s.Submit(TaskRequest{Code: leaf(s, 0)}); resp.Assigned {
		t.Fatalf("third task assigned beyond capacity: %+v", resp)
	}
	if st := s.Stats(); st.AvailableWorkers != 0 || st.CapacityUnits != 0 {
		t.Fatalf("stats after saturation: %+v", st)
	}
	// One release returns one unit.
	if r := s.Release(ReleaseRequest{WorkerID: "w"}); !r.OK {
		t.Fatal(r.Reason)
	}
	if st := s.Stats(); st.AvailableWorkers != 1 || st.CapacityUnits != 1 {
		t.Fatalf("stats after release: %+v", st)
	}
	if resp := s.Submit(TaskRequest{Code: leaf(s, 0)}); !resp.Assigned || resp.WorkerID != "w" {
		t.Fatalf("re-submit after release: %+v", resp)
	}
}

func TestReleaseMovesSpareUnitsToFreshCode(t *testing.T) {
	s := newCapServer(t, WithPolicy(engine.CapacityGreedy()), WithDefaultCapacity(3))
	if r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 0)}); !r.OK {
		t.Fatal(r.Reason)
	}
	// One task out, two units still pooled at the old leaf.
	if resp := s.Submit(TaskRequest{Code: leaf(s, 0)}); !resp.Assigned {
		t.Fatal("submit failed")
	}
	// Completion re-reports at a different leaf: all three remaining units
	// must follow it.
	if r := s.Release(ReleaseRequest{WorkerID: "w", Code: leaf(s, 9)}); !r.OK {
		t.Fatal(r.Reason)
	}
	if st := s.Stats(); st.CapacityUnits != 3 || st.AvailableWorkers != 1 {
		t.Fatalf("stats after moving release: %+v", st)
	}
	// The worker now answers at the new leaf, co-located (level 0).
	resp := s.Submit(TaskRequest{Code: leaf(s, 9)})
	if !resp.Assigned || resp.WorkerID != "w" {
		t.Fatalf("submit at new leaf: %+v", resp)
	}
	if st := s.Stats(); st.MatchLevelCounts[0] != 2 {
		t.Fatalf("expected two level-0 matches, got %v", st.MatchLevelCounts)
	}
}

func TestWithdrawWithOutstandingTasks(t *testing.T) {
	s := newCapServer(t, WithPolicy(engine.CapacityGreedy()), WithDefaultCapacity(2))
	if r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 0)}); !r.OK {
		t.Fatal(r.Reason)
	}
	if resp := s.Submit(TaskRequest{Code: leaf(s, 0)}); !resp.Assigned {
		t.Fatal("submit failed")
	}
	// Withdraw with one task running and one spare unit pooled: the spare
	// unit leaves immediately, no new work arrives.
	if r := s.Withdraw(WithdrawRequest{WorkerID: "w"}); !r.OK {
		t.Fatal(r.Reason)
	}
	if st := s.Stats(); st.AvailableWorkers != 0 || st.CapacityUnits != 0 {
		t.Fatalf("stats after withdraw: %+v", st)
	}
	if resp := s.Submit(TaskRequest{Code: leaf(s, 0)}); resp.Assigned {
		t.Fatalf("withdrawn worker got new work: %+v", resp)
	}
	// The outstanding completion is acknowledged but stays out of the pool,
	// and the worker may then register back.
	r := s.Release(ReleaseRequest{WorkerID: "w"})
	if r.OK || !strings.Contains(r.Reason, "withdrawn") {
		t.Fatalf("release after withdraw: %+v", r)
	}
	if r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 3)}); !r.OK {
		t.Fatalf("revival refused: %+v", r)
	}
	if st := s.Stats(); st.CapacityUnits != 2 {
		t.Fatalf("revived stats: %+v", st)
	}
}

func TestBatchOptimalServerAvoidsGreedySteal(t *testing.T) {
	s := newCapServer(t, WithPolicy(engine.BatchOptimal(4)))
	tree := s.Publication().Tree
	c1 := tree.CodeOf(0)
	near := []byte(c1)
	near[len(near)-1] = byte((int(near[len(near)-1]) + 1) % tree.Degree())
	far := []byte(c1)
	far[0] = byte((int(far[0]) + 1) % tree.Degree())

	if r := s.Register(RegisterRequest{WorkerID: "w0", Code: []byte(c1)}); !r.OK {
		t.Fatal(r.Reason)
	}
	if r := s.Register(RegisterRequest{WorkerID: "w1", Code: far}); !r.OK {
		t.Fatal(r.Reason)
	}
	resp := s.SubmitBatch(TaskBatchRequest{Tasks: []TaskRequest{
		{TaskID: "a", Code: near},       // one step from w0
		{TaskID: "b", Code: []byte(c1)}, // exactly on w0
	}})
	if !resp.Results[0].Assigned || resp.Results[0].WorkerID != "w1" {
		t.Fatalf("task a: %+v (greedy would steal w0)", resp.Results[0])
	}
	if !resp.Results[1].Assigned || resp.Results[1].WorkerID != "w0" {
		t.Fatalf("task b: %+v", resp.Results[1])
	}
	st := s.Stats()
	if st.BatchWindows != 1 {
		t.Errorf("BatchWindows = %d, want 1", st.BatchWindows)
	}
	if !strings.HasPrefix(st.Policy, "batch-optimal") {
		t.Errorf("Policy = %q", st.Policy)
	}
	if st.PolicyCounters[st.Policy] != 2 {
		t.Errorf("PolicyCounters = %v, want 2 under %q", st.PolicyCounters, st.Policy)
	}
}

// TestRotationCarriesCapacity rotates a capacitated worker mid-assignment:
// its remaining units follow it into the new epoch and its outstanding
// task releases against the new slot without an extra budget spend.
func TestRotationCarriesCapacity(t *testing.T) {
	s := newCapServer(t, WithPolicy(engine.CapacityGreedy()), WithDefaultCapacity(3))
	if r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 0)}); !r.OK {
		t.Fatal(r.Reason)
	}
	if resp := s.Submit(TaskRequest{Code: leaf(s, 0)}); !resp.Assigned {
		t.Fatal("submit failed")
	}
	resp := s.RotateNow(PrepareRotateRequest{}, nil, func(_ string, tree *hst.Tree) (hst.Code, error) {
		return tree.CodeOf(5), nil
	})
	if !resp.OK || resp.Rotated != 1 {
		t.Fatalf("rotate: %+v", resp)
	}
	if st := s.Stats(); st.CapacityUnits != 2 || st.AvailableWorkers != 1 {
		t.Fatalf("stats after rotation: %+v", st)
	}
	// The pre-rotation task completes: without a fresh code the unit must
	// rejoin at the rotated slot's new-epoch leaf (no budget spend needed).
	if r := s.Release(ReleaseRequest{WorkerID: "w"}); !r.OK {
		t.Fatalf("post-rotation release: %+v", r)
	}
	if st := s.Stats(); st.CapacityUnits != 3 {
		t.Fatalf("stats after post-rotation release: %+v", st)
	}
	// All three units serve in the new epoch.
	newLeaf := s.Publication().Tree.CodeOf(5)
	for i := 0; i < 3; i++ {
		resp := s.Submit(TaskRequest{Code: []byte(newLeaf)})
		if !resp.Assigned || resp.WorkerID != "w" || resp.Epoch != s.Publication().Epoch {
			t.Fatalf("post-rotation submit %d: %+v", i, resp)
		}
	}
}

func TestRegisterRejectsNegativeCapacity(t *testing.T) {
	s := newCapServer(t, WithPolicy(engine.CapacityGreedy()))
	if r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 0), Capacity: -1}); r.OK {
		t.Error("negative capacity accepted")
	}
}

// TestRegisterOutOfRangeCapacitySpendsNoBudget pins the validation order:
// a capacity the engine would refuse is rejected before the lifetime
// budget spend, so retries cannot burn a worker's ε on registrations that
// never land.
func TestRegisterOutOfRangeCapacitySpendsNoBudget(t *testing.T) {
	s := newCapServer(t, WithPolicy(engine.CapacityGreedy()), WithLifetimeBudget(1.2))
	r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 0), Capacity: 1 << 40})
	if r.OK || r.Parked {
		t.Fatalf("out-of-range capacity: %+v", r)
	}
	if st := s.Stats(); st.BudgetSpentTotal != 0 {
		t.Fatalf("refused registration spent budget: %v", st.BudgetSpentTotal)
	}
	// The worker can still afford its real registrations afterwards.
	if r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 0), Capacity: 2}); !r.OK {
		t.Fatalf("valid registration refused: %+v", r)
	}
}

// TestReleaseMoveDoesNotResurrectInFlightPop pins the Release/Submit race:
// a concurrent Submit's engine pop that has not yet been recorded under
// the server lock must not be re-created when a Release moves the worker's
// spare units to a fresh leaf — the move is sized by what the engine
// actually still pools, not by capacity−active.
func TestReleaseMoveDoesNotResurrectInFlightPop(t *testing.T) {
	s := newCapServer(t, WithPolicy(engine.CapacityGreedy()), WithDefaultCapacity(3))
	if r := s.Register(RegisterRequest{WorkerID: "w", Code: leaf(s, 0)}); !r.OK {
		t.Fatal(r.Reason)
	}
	if resp := s.Submit(TaskRequest{Code: leaf(s, 0)}); !resp.Assigned {
		t.Fatal("submit failed")
	}
	// Simulate a Submit mid-flight: the pop has happened engine-side, the
	// bookkeeping under mu has not.
	if _, _, ok := s.Engine().Assign(hst.Code(leaf(s, 0))); !ok {
		t.Fatal("in-flight pop failed")
	}
	// The worker completes its first task and re-reports a fresh leaf.
	if r := s.Release(ReleaseRequest{WorkerID: "w", Code: leaf(s, 9)}); !r.OK {
		t.Fatal(r.Reason)
	}
	// Units now pooled: capacity 3 − 1 recorded active... the release
	// returned one unit and moved the single genuinely pooled unit; the
	// in-flight unit must stay consumed.
	if got := s.Engine().CapacityUnits(); got != 2 {
		t.Fatalf("engine pools %d units after the racy move, want 2 (in-flight pop resurrected)", got)
	}
}
