package platform

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/workload"
)

// rotReporter is the test's client side: one obfuscator per worker name
// would be realistic, but for rotation semantics a deterministic fresh
// code per (worker, tree) suffices.
func rotReporter(src *rng.Source) func(workerID string, tree *hst.Tree) (hst.Code, error) {
	return func(workerID string, tree *hst.Tree) (hst.Code, error) {
		b := make([]byte, tree.Depth())
		for j := range b {
			b[j] = byte(src.Intn(tree.Degree()))
		}
		return hst.Code(b), nil
	}
}

func registerN(t *testing.T, s *Server, n int) {
	t.Helper()
	o, err := NewObfuscator(s.Publication(), 7)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	for i := 0; i < n; i++ {
		w := Worker{ID: fmt.Sprintf("w%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		if err := w.Register(s, o); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRotateSwapsEpochAndPopulation(t *testing.T) {
	s := newTestServer(t)
	registerN(t, s, 12)
	pub1 := s.Publication()
	if pub1.Epoch != 1 {
		t.Fatalf("initial epoch %d", pub1.Epoch)
	}

	// Assign one worker so the rotation sees a busy slot.
	o, _ := NewObfuscator(pub1, 9)
	busyResp := s.Submit(TaskRequest{TaskID: "t0", Code: []byte(o.Obfuscate(geo.Pt(1, 1))), Epoch: 1})
	if !busyResp.Assigned {
		t.Fatal("seed task unassigned")
	}
	if busyResp.Epoch != 1 {
		t.Fatalf("assignment stamped epoch %d", busyResp.Epoch)
	}

	resp := s.RotateNow(PrepareRotateRequest{}, nil, rotReporter(rng.New(5)))
	if !resp.OK {
		t.Fatal(resp.Reason)
	}
	if resp.Epoch != 2 || resp.Rotated != 11 || len(resp.Parked) != 0 || len(resp.Dropped) != 0 {
		t.Fatalf("rotate response %+v", resp)
	}
	pub2 := s.Publication()
	if pub2.Epoch != 2 || pub2.Tree == pub1.Tree {
		t.Fatalf("publication not rotated: epoch %d", pub2.Epoch)
	}
	st := s.Stats()
	if st.Epoch != 2 || st.Rotations != 1 || st.RotatedWorkers != 11 || st.AvailableWorkers != 11 {
		t.Fatalf("stats after rotation: %+v", st)
	}

	// Old-epoch tasks are refused as stale; new-epoch tasks assign and are
	// stamped with the new epoch.
	o2, err := NewObfuscator(pub2, 11)
	if err != nil {
		t.Fatal(err)
	}
	stale := s.Submit(TaskRequest{TaskID: "t1", Code: []byte(o2.Obfuscate(geo.Pt(2, 2))), Epoch: 1})
	if stale.Assigned || !strings.Contains(stale.Reason, "stale epoch") {
		t.Fatalf("stale task response %+v", stale)
	}
	fresh := s.Submit(TaskRequest{TaskID: "t2", Code: []byte(o2.Obfuscate(geo.Pt(2, 2))), Epoch: 2})
	if !fresh.Assigned || fresh.Epoch != 2 {
		t.Fatalf("fresh task response %+v", fresh)
	}
	// The stale refusal re-inserted its popped worker: available count is
	// down exactly one (the fresh assignment).
	if got := s.Stats().AvailableWorkers; got != 10 {
		t.Fatalf("available after stale+fresh = %d, want 10", got)
	}

	// The busy worker cannot re-report its old code after the rotation...
	rel := s.Release(ReleaseRequest{WorkerID: busyResp.WorkerID})
	if rel.OK || !strings.Contains(rel.Reason, "fresh report is required") {
		t.Fatalf("old-epoch empty release response %+v", rel)
	}
	// ...but releases fine with a fresh new-epoch code.
	rel = s.Release(ReleaseRequest{WorkerID: busyResp.WorkerID, Code: []byte(o2.Obfuscate(geo.Pt(3, 3))), Epoch: 2})
	if !rel.OK || rel.Epoch != 2 {
		t.Fatalf("fresh release response %+v", rel)
	}

	// Old-epoch registrations are refused too.
	reg := s.Register(RegisterRequest{WorkerID: "late", Code: []byte{0}, Epoch: 1})
	if reg.OK || !strings.Contains(reg.Reason, "stale epoch") {
		t.Fatalf("stale register response %+v", reg)
	}
}

func TestRotateDropsUnreportedAndSkipsUnknown(t *testing.T) {
	s := newTestServer(t)
	registerN(t, s, 6)
	prep := s.PrepareRotate(PrepareRotateRequest{})
	if !prep.OK || prep.Epoch != 2 {
		t.Fatal(prep.Reason)
	}
	// Fresh reports for 3 of the 6 workers, plus one unknown, one
	// duplicate, and one malformed.
	report := rotReporter(rng.New(5))
	var reports []WorkerReport
	for _, w := range []string{"w0", "w2", "w4", "ghost", "w0"} {
		code, _ := report(w, prep.Tree)
		reports = append(reports, WorkerReport{WorkerID: w, Code: []byte(code)})
	}
	reports = append(reports, WorkerReport{WorkerID: "w5", Code: []byte("garbage that is far too long")})
	resp := s.Rotate(RotateRequest{Epoch: prep.Epoch, Reports: reports})
	if !resp.OK {
		t.Fatal(resp.Reason)
	}
	if resp.Rotated != 3 || resp.Skipped != 3 || len(resp.Dropped) != 3 {
		t.Fatalf("rotate response %+v", resp)
	}
	if st := s.Stats(); st.AvailableWorkers != 3 || st.DroppedWorkers != 3 {
		t.Fatalf("stats %+v", st)
	}
	// A dropped worker may register back under the new epoch.
	o, err := NewObfuscator(s.Publication(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if reg := s.Register(RegisterRequest{WorkerID: "w1", Code: []byte(o.Obfuscate(geo.Pt(5, 5))), Epoch: 2}); !reg.OK {
		t.Fatalf("dropped worker cannot re-register: %s", reg.Reason)
	}
}

func TestRotateWithoutPrepareRefused(t *testing.T) {
	s := newTestServer(t)
	if resp := s.Rotate(RotateRequest{}); resp.OK || !strings.Contains(resp.Reason, "no rotation staged") {
		t.Fatalf("commit without prepare: %+v", resp)
	}
	prep := s.PrepareRotate(PrepareRotateRequest{})
	if !prep.OK {
		t.Fatal(prep.Reason)
	}
	if resp := s.Rotate(RotateRequest{Epoch: prep.Epoch + 3}); resp.OK {
		t.Fatal("mismatched commit epoch accepted")
	}
}

// TestBudgetExhaustionParksWorkers is the accountant wiring test: spends
// accumulate across Register/Release/rotation, exhausted workers are
// parked with the Parked error shape everywhere, and the accountant total
// equals the test's own ledger of accepted fresh reports.
func TestBudgetExhaustionParksWorkers(t *testing.T) {
	// Lifetime 1.2 at ε 0.6: every worker affords exactly two reports.
	s, err := NewServer(workload.SyntheticRegion, 8, 8, 0.6, 42, WithLifetimeBudget(1.2))
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObfuscator(s.Publication(), 7)
	if err != nil {
		t.Fatal(err)
	}
	ledger := 0.0
	// Register (spend 1) three workers.
	for _, w := range []string{"a", "b", "c"} {
		if resp := s.Register(RegisterRequest{WorkerID: w, Code: []byte(o.Obfuscate(geo.Pt(1, 1)))}); !resp.OK {
			t.Fatal(resp.Reason)
		}
		ledger += 0.6
	}
	// "a": assign, then release at a fresh code (spend 2).
	var aCode hst.Code
	for {
		aCode = o.Obfuscate(geo.Pt(1, 1))
		resp := s.Submit(TaskRequest{Code: []byte(aCode)})
		if !resp.Assigned {
			t.Fatal("no assignment")
		}
		if resp.WorkerID == "a" {
			break
		}
		if rel := s.Release(ReleaseRequest{WorkerID: resp.WorkerID}); !rel.OK {
			t.Fatal(rel.Reason)
		}
	}
	if rel := s.Release(ReleaseRequest{WorkerID: "a", Code: []byte(o.Obfuscate(geo.Pt(9, 9)))}); !rel.OK {
		t.Fatal(rel.Reason)
	}
	ledger += 0.6
	// "a" is now exhausted: a Reregister is refused with Parked and the
	// worker leaves the pool.
	avail := s.Stats().AvailableWorkers
	rr := s.Reregister(ReregisterRequest{WorkerID: "a", Code: []byte(o.Obfuscate(geo.Pt(2, 2)))})
	if rr.OK || !rr.Parked {
		t.Fatalf("over-budget reregister: %+v", rr)
	}
	if got := s.Stats().AvailableWorkers; got != avail-1 {
		t.Fatalf("parked worker still available: %d → %d", avail, got)
	}
	if st := s.Stats(); st.ParkedWorkers != 1 {
		t.Fatalf("ParkedWorkers = %d", st.ParkedWorkers)
	}
	// Parked is terminal: Register, Release, Withdraw all refuse with the
	// same shape.
	if resp := s.Register(RegisterRequest{WorkerID: "a", Code: []byte(o.Obfuscate(geo.Pt(2, 2)))}); resp.OK || !resp.Parked {
		t.Fatalf("parked register: %+v", resp)
	}
	if resp := s.Withdraw(WithdrawRequest{WorkerID: "a"}); resp.OK || !resp.Parked {
		t.Fatalf("parked withdraw: %+v", resp)
	}

	// Rotate: "b" and "c" have 0.6 left — the rotation re-report (spend 2)
	// fits exactly; a second rotation parks them both.
	resp := s.RotateNow(PrepareRotateRequest{}, nil, rotReporter(rng.New(5)))
	if !resp.OK || resp.Rotated != 2 || len(resp.Parked) != 0 {
		t.Fatalf("rotation 1: %+v", resp)
	}
	ledger += 2 * 0.6
	resp = s.RotateNow(PrepareRotateRequest{}, nil, rotReporter(rng.New(6)))
	if !resp.OK || resp.Rotated != 0 || len(resp.Parked) != 2 {
		t.Fatalf("rotation 2: %+v", resp)
	}
	st := s.Stats()
	if st.ParkedWorkers != 3 || st.AvailableWorkers != 0 {
		t.Fatalf("final stats %+v", st)
	}
	// Budget conservation: the accountant's total is exactly the ledger of
	// accepted fresh reports, and no worker exceeds the limit.
	if diff := st.BudgetSpentTotal - ledger; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("BudgetSpentTotal = %v, ledger %v", st.BudgetSpentTotal, ledger)
	}
	if st.BudgetLimit != 1.2 || st.BudgetedAgents != 3 {
		t.Fatalf("budget stats %+v", st)
	}
}

// TestBudgetExhaustedHTTPShape pins the wire shape of the parked refusal:
// HTTP 200 with ok=false, parked=true, and a reason naming the worker —
// clients distinguish "budget exhausted" from transport or validation
// failures structurally, not by parsing prose.
func TestBudgetExhaustedHTTPShape(t *testing.T) {
	s, err := NewServer(workload.SyntheticRegion, 8, 8, 0.6, 42, WithLifetimeBudget(0.6))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewObfuscator(client.Publication(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// First registration spends the whole lifetime; withdrawing and coming
	// back needs a second report, which is over budget.
	if resp := client.Register(RegisterRequest{WorkerID: "w", Code: []byte(o.Obfuscate(geo.Pt(1, 1)))}); !resp.OK {
		t.Fatal(resp.Reason)
	}
	if resp := client.Withdraw(WithdrawRequest{WorkerID: "w"}); !resp.OK {
		t.Fatal(resp.Reason)
	}
	resp := client.Register(RegisterRequest{WorkerID: "w", Code: []byte(o.Obfuscate(geo.Pt(2, 2)))})
	if resp.OK || !resp.Parked {
		t.Fatalf("over-budget HTTP register: %+v", resp)
	}
	if !strings.Contains(resp.Reason, `"w"`) || !strings.Contains(resp.Reason, "budget exhausted") {
		t.Fatalf("reason %q does not name the worker and the cause", resp.Reason)
	}
	// The raw JSON carries the parked flag (not just the Go struct).
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"parked":true`) {
		t.Fatalf("wire shape %s lacks parked flag", raw)
	}
}

// TestRotateOverHTTP drives the full two-phase rotation through the HTTP
// client: prepare, client-side re-obfuscation under the staged tree,
// commit, and the client's publication cache refresh.
func TestRotateOverHTTP(t *testing.T) {
	s := newTestServer(t)
	registerN(t, s, 5)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	prep := client.PrepareRotate(PrepareRotateRequest{Seed: 77})
	if !prep.OK || prep.Tree == nil || prep.Epoch != 2 {
		t.Fatalf("prepare over HTTP: %+v", prep)
	}
	report := rotReporter(rng.New(5))
	var reports []WorkerReport
	for i := 0; i < 5; i++ {
		code, _ := report("", prep.Tree)
		reports = append(reports, WorkerReport{WorkerID: fmt.Sprintf("w%d", i), Code: []byte(code)})
	}
	resp := client.Rotate(RotateRequest{Epoch: prep.Epoch, Reports: reports})
	if !resp.OK || resp.Rotated != 5 {
		t.Fatalf("rotate over HTTP: %+v", resp)
	}
	if got := client.Publication().Epoch; got != 2 {
		t.Fatalf("client publication cache at epoch %d after rotate", got)
	}
	// A fresh obfuscator over the re-fetched publication serves tasks.
	o, err := NewObfuscator(client.Publication(), 21)
	if err != nil {
		t.Fatal(err)
	}
	task := client.Submit(TaskRequest{TaskID: "t", Code: []byte(o.Obfuscate(geo.Pt(3, 3))), Epoch: 2})
	if !task.Assigned || task.Epoch != 2 {
		t.Fatalf("post-rotation task: %+v", task)
	}
}

// materializedCore hides the engine's SwapEpochSeq behind a plain Core so
// Rotate takes the materialized fallback path — the seam a cluster
// coordinator core sits behind.
type materializedCore struct{ Core }

// TestRotateSeqAndMaterializedPathsAgree pins the two commit paths in
// Rotate against each other: an engine core (which offers SwapEpochSeq)
// and the same engine hidden behind a bare Core must rotate to identical
// serving states.
func TestRotateSeqAndMaterializedPathsAgree(t *testing.T) {
	grid, err := geo.NewGrid(workload.SyntheticRegion, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	build := func(wrap bool) *Server {
		tree, err := hst.Build(grid.Points(), rng.New(42).Derive("server-hst"))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(tree, 3)
		if err != nil {
			t.Fatal(err)
		}
		var core Core = eng
		if wrap {
			core = materializedCore{eng}
		} else if _, ok := core.(seqSwapper); !ok {
			t.Fatal("engine.Engine must satisfy seqSwapper — the seq rotate path would silently never run")
		}
		s, err := NewServer(workload.SyntheticRegion, 8, 8, 0.6, 42, WithCore(core))
		if err != nil {
			t.Fatal(err)
		}
		registerN(t, s, 25)
		return s
	}
	if _, ok := interface{}(materializedCore{}).(seqSwapper); ok {
		t.Fatal("materializedCore must not satisfy seqSwapper")
	}

	seq, mat := build(false), build(true)
	rSeq := seq.RotateNow(PrepareRotateRequest{Seed: 9}, nil, rotReporter(rng.New(5)))
	rMat := mat.RotateNow(PrepareRotateRequest{Seed: 9}, nil, rotReporter(rng.New(5)))
	if !rSeq.OK || !rMat.OK {
		t.Fatalf("rotations failed: seq=%+v mat=%+v", rSeq, rMat)
	}
	if rSeq.Epoch != rMat.Epoch || rSeq.Rotated != rMat.Rotated ||
		len(rSeq.Parked) != len(rMat.Parked) || len(rSeq.Dropped) != len(rMat.Dropped) {
		t.Fatalf("rotation responses diverge:\nseq %+v\nmat %+v", rSeq, rMat)
	}

	// Drain both populations with an identical probe tape: every answer
	// must match, worker for worker.
	oSeq, err := NewObfuscator(seq.Publication(), 31)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(77)
	for i := 0; ; i++ {
		p := geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))
		// Obfuscation is randomized: draw the code once, probe both with it.
		code := []byte(oSeq.Obfuscate(p))
		a := seq.Submit(TaskRequest{TaskID: fmt.Sprintf("s%d", i), Code: code, Epoch: rSeq.Epoch})
		b := mat.Submit(TaskRequest{TaskID: fmt.Sprintf("m%d", i), Code: code, Epoch: rMat.Epoch})
		if a.Assigned != b.Assigned || a.WorkerID != b.WorkerID {
			t.Fatalf("probe %d diverges: seq %+v, mat %+v", i, a, b)
		}
		if !a.Assigned {
			break
		}
	}
}
