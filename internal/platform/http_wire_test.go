package platform

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sync"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
	"github.com/pombm/pombm/internal/wire"
)

// traceTransport counts connection handouts via httptrace so tests can
// assert keep-alive reuse instead of inferring it from timing.
type traceTransport struct {
	rt http.RoundTripper

	mu     sync.Mutex
	total  int
	reused int
}

func (t *traceTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	trace := &httptrace.ClientTrace{
		GotConn: func(ci httptrace.GotConnInfo) {
			t.mu.Lock()
			t.total++
			if ci.Reused {
				t.reused++
			}
			t.mu.Unlock()
		},
	}
	return t.rt.RoundTrip(req.WithContext(httptrace.WithClientTrace(req.Context(), trace)))
}

func (t *traceTransport) counts() (total, reused int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, t.reused
}

// TestConnectionReuse pins the keep-alive contract of the serving path:
// after the first request warms a connection, every subsequent sequential
// request must ride the same one. This regressed before because the client
// decoded responses with json.Decoder, which leaves the encoder's trailing
// newline unread — net/http then refuses to reuse the connection and every
// op pays a fresh TCP handshake.
func TestConnectionReuse(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a private traced transport so this test observes its own
	// connection pool, not the process-wide shared one.
	tt := &traceTransport{rt: NewTransport()}
	client.HTTP = &http.Client{Transport: tt}

	o, err := NewObfuscator(client.Publication(), 11)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(17)
	for i := 0; i < 8; i++ {
		w := Worker{ID: fmt.Sprintf("w%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		if err := w.Register(client, o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		task := Task{ID: fmt.Sprintf("t%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		if _, _, err := task.Submit(client, o); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}

	total, reused := tt.counts()
	if total < 17 {
		t.Fatalf("traced %d requests, expected at least 17", total)
	}
	if reused < total-1 {
		t.Errorf("connection reused on %d of %d requests, want all but the first", reused, total)
	}
}

// TestErrorResponsesKeepConnectionAlive extends the reuse pin to the error
// path: a structured-error response (unknown worker) must also be drained
// so the connection survives for the next request.
func TestErrorResponsesKeepConnectionAlive(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	client, err := NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	tt := &traceTransport{rt: NewTransport()}
	client.HTTP = &http.Client{Transport: tt}

	for i := 0; i < 6; i++ {
		if resp := client.Withdraw(WithdrawRequest{WorkerID: "nobody"}); resp.OK {
			t.Fatal("withdraw of unknown worker succeeded")
		}
	}
	total, reused := tt.counts()
	if total != 6 {
		t.Fatalf("traced %d requests, want 6", total)
	}
	if reused < total-1 {
		t.Errorf("error responses broke keep-alive: reused %d of %d", reused, total)
	}
}

// nopResponseWriter is the cheapest possible sink for alloc pins: header
// reused across runs, writes discarded.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w nopResponseWriter) WriteHeader(int)             {}

// nopBody adapts a reusable bytes.Reader into an io.ReadCloser so the
// decode pin can replay the same request body without allocating one.
type nopBody struct{ *bytes.Reader }

func (nopBody) Close() error { return nil }

// TestServingCodecAllocs pins the steady-state allocation budget of the
// pooled wire codecs at ≤ 2 allocs/op. The two allowed allocations are
// inherent, not scratch: the Content-Length header value on encode, and
// the decoded TaskID string + Code slice on decode. Scratch buffers,
// encoders, and readers must all come from the pool.
func TestServingCodecAllocs(t *testing.T) {
	resp := &TaskResponse{Assigned: true, WorkerID: "w-12345", Epoch: 3}
	w := nopResponseWriter{h: http.Header{}}
	encN := testing.AllocsPerRun(200, func() {
		writeJSON(w, resp)
	})
	t.Logf("writeJSON(TaskResponse): %.2f allocs/op", encN)
	if encN > 2 {
		t.Errorf("writeJSON allocates %.2f/op, budget is 2", encN)
	}

	payload := []byte(`{"task_id":"t-9999","code":"AAECAwQFBgc=","epoch":4}` + "\n")
	rd := &bytes.Reader{}
	req := &http.Request{
		Method: http.MethodPost,
		Header: http.Header{"Content-Type": []string{"application/json"}},
		Body:   nopBody{rd},
	}
	var task TaskRequest
	decN := testing.AllocsPerRun(200, func() {
		rd.Reset(payload)
		if !readJSON(w, req, &task) {
			t.Fatal("readJSON failed")
		}
	})
	t.Logf("readJSON(TaskRequest): %.2f allocs/op", decN)
	if decN > 2 {
		t.Errorf("readJSON allocates %.2f/op, budget is 2", decN)
	}

	treq := &TaskRequest{TaskID: "t-1", Code: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	postN := testing.AllocsPerRun(200, func() {
		cb := wire.Get()
		if err := cb.Encode(treq); err != nil {
			t.Fatal(err)
		}
		_ = cb.Reader()
		wire.Put(cb)
	})
	t.Logf("client post encode(TaskRequest): %.2f allocs/op", postN)
	if postN > 2 {
		t.Errorf("client post encode allocates %.2f/op, budget is 2", postN)
	}
}
