// Package platform implements the paper's interaction model (Sec. II-A,
// Fig. 1) as a runnable system: an untrusted server that publishes the
// predefined points and HST, worker and task agents that snap and obfuscate
// their locations *client-side* before reporting, online assignment on the
// server, and a private channel through which an assigned worker learns the
// task's true location (as the paper assumes happens off-platform).
//
// Two transports are provided: direct in-process calls and JSON over HTTP
// (net/http), sharing the wire types below.
package platform

import (
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
)

// Publication is what the server makes public: the tree (with its
// predefined points), the grid geometry for O(1) snapping, and the privacy
// budget workers and tasks must obfuscate with.
type Publication struct {
	Tree    *hst.Tree `json:"tree"`
	Region  geo.Rect  `json:"region"`
	Cols    int       `json:"cols"`
	Rows    int       `json:"rows"`
	Epsilon float64   `json:"epsilon"`
}

// RegisterRequest announces a worker's availability with its obfuscated
// leaf. The true location never appears on the wire.
type RegisterRequest struct {
	WorkerID string `json:"worker_id"`
	Code     []byte `json:"code"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// TaskRequest submits a dynamically appearing task with its obfuscated leaf.
type TaskRequest struct {
	TaskID string `json:"task_id"`
	Code   []byte `json:"code"`
}

// TaskResponse carries the assignment decision.
type TaskResponse struct {
	Assigned bool   `json:"assigned"`
	WorkerID string `json:"worker_id,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// TaskBatchRequest submits a batch of tasks to be assigned in order
// through the engine's amortised batch path.
type TaskBatchRequest struct {
	Tasks []TaskRequest `json:"tasks"`
}

// TaskBatchResponse carries one assignment decision per submitted task, in
// submission order.
type TaskBatchResponse struct {
	Results []TaskResponse `json:"results"`
}

// ReleaseRequest returns an assigned worker to the available pool. Code is
// optional: empty re-reports the worker's previous leaf (no extra privacy
// spend); non-empty reports a freshly obfuscated location.
type ReleaseRequest struct {
	WorkerID string `json:"worker_id"`
	Code     []byte `json:"code,omitempty"`
}

// WithdrawRequest takes a worker offline: immediately when available, after
// its current task when assigned.
type WithdrawRequest struct {
	WorkerID string `json:"worker_id"`
}

// StatsResponse summarises server state for monitoring.
type StatsResponse struct {
	RegisteredWorkers int `json:"registered_workers"`
	AvailableWorkers  int `json:"available_workers"`
	AssignedTasks     int `json:"assigned_tasks"`
	RejectedTasks     int `json:"rejected_tasks"`
	ReleasedWorkers   int `json:"released_workers"`
	WithdrawnWorkers  int `json:"withdrawn_workers"`
	// MatchLevelCounts histograms assignments by the LCA level of the
	// match (index 0 = co-located leaf, index D = cross-root match): the
	// server-observable proxy for match quality, maintained identically on
	// the one-by-one and batch submission paths.
	MatchLevelCounts []int `json:"match_level_counts,omitempty"`
	// MeanMatchLevel is the average LCA level over all assignments (0 when
	// none have been made).
	MeanMatchLevel float64 `json:"mean_match_level"`
}
