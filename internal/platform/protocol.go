// Package platform implements the paper's interaction model (Sec. II-A,
// Fig. 1) as a runnable system: an untrusted server that publishes the
// predefined points and HST, worker and task agents that snap and obfuscate
// their locations *client-side* before reporting, online assignment on the
// server, and a private channel through which an assigned worker learns the
// task's true location (as the paper assumes happens off-platform).
//
// Two transports are provided: direct in-process calls and JSON over HTTP
// (net/http), sharing the wire types below.
package platform

import (
	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
)

// Publication is what the server makes public: the tree (with its
// predefined points), the grid geometry for O(1) snapping, and the privacy
// budget workers and tasks must obfuscate with.
type Publication struct {
	Tree    *hst.Tree `json:"tree"`
	Region  geo.Rect  `json:"region"`
	Cols    int       `json:"cols"`
	Rows    int       `json:"rows"`
	Epsilon float64   `json:"epsilon"`
	// Epoch identifies the serving epoch the tree belongs to. Agents tag
	// their reports and tasks with it; after a rotation, codes obfuscated
	// under an older publication are refused as stale.
	Epoch int64 `json:"epoch,omitempty"`
}

// RegisterRequest announces a worker's availability with its obfuscated
// leaf. The true location never appears on the wire.
type RegisterRequest struct {
	WorkerID string `json:"worker_id"`
	Code     []byte `json:"code"`
	// Epoch tags the publication the code was obfuscated under; 0 accepts
	// whatever epoch is being served (pre-rotation clients).
	Epoch int64 `json:"epoch,omitempty"`
	// Capacity is how many tasks the worker can serve concurrently before
	// leaving the pool. 0 selects the server default; every value is
	// clamped to 1 unless the server runs a capacity-aware policy.
	Capacity int `json:"capacity,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	OK bool `json:"ok"`
	// Reason is the human-readable refusal.
	//
	// Deprecated: match on Err with errors.Is instead of string-matching
	// Reason; Reason remains populated for older clients.
	Reason string `json:"reason,omitempty"`
	// Err is the structured refusal (nil on success).
	Err *Error `json:"error,omitempty"`
	// Parked reports that the worker's lifetime ε budget is exhausted: the
	// platform refuses further fresh reports from it permanently instead
	// of degrading its guarantee.
	Parked bool `json:"parked,omitempty"`
	// Epoch is the serving epoch that accepted the report.
	Epoch int64 `json:"epoch,omitempty"`
}

// TaskRequest submits a dynamically appearing task with its obfuscated leaf.
type TaskRequest struct {
	TaskID string `json:"task_id"`
	Code   []byte `json:"code"`
	// Epoch tags the publication the code was obfuscated under; a task
	// from a rotated-away epoch is refused rather than matched against
	// workers noised under a different tree. 0 accepts the serving epoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// TaskResponse carries the assignment decision.
type TaskResponse struct {
	Assigned bool   `json:"assigned"`
	WorkerID string `json:"worker_id,omitempty"`
	// Reason is the human-readable refusal.
	//
	// Deprecated: match on Err with errors.Is instead of string-matching
	// Reason; Reason remains populated for older clients.
	Reason string `json:"reason,omitempty"`
	// Err is the structured refusal (nil when assigned).
	Err *Error `json:"error,omitempty"`
	// Epoch is the epoch the assigned worker's report was obfuscated
	// under; it always equals the serving epoch of the assignment (the
	// epoch-consistency invariant the rotation tests assert).
	Epoch int64 `json:"epoch,omitempty"`
}

// TaskBatchRequest submits a batch of tasks to be assigned in order
// through the engine's amortised batch path.
type TaskBatchRequest struct {
	Tasks []TaskRequest `json:"tasks"`
}

// TaskBatchResponse carries one assignment decision per submitted task, in
// submission order.
type TaskBatchResponse struct {
	Results []TaskResponse `json:"results"`
}

// ReleaseRequest returns an assigned worker to the available pool. Code is
// optional: empty re-reports the worker's previous leaf (no extra privacy
// spend); non-empty reports a freshly obfuscated location.
type ReleaseRequest struct {
	WorkerID string `json:"worker_id"`
	Code     []byte `json:"code,omitempty"`
	// Epoch tags the publication a non-empty Code was obfuscated under.
	Epoch int64 `json:"epoch,omitempty"`
}

// WithdrawRequest takes a worker offline: immediately when available, after
// its current task when assigned.
type WithdrawRequest struct {
	WorkerID string `json:"worker_id"`
}

// StatsResponse summarises server state for monitoring.
type StatsResponse struct {
	RegisteredWorkers int `json:"registered_workers"`
	AvailableWorkers  int `json:"available_workers"`
	AssignedTasks     int `json:"assigned_tasks"`
	RejectedTasks     int `json:"rejected_tasks"`
	ReleasedWorkers   int `json:"released_workers"`
	WithdrawnWorkers  int `json:"withdrawn_workers"`
	// MatchLevelCounts histograms assignments by the LCA level of the
	// match (index 0 = co-located leaf, index D = cross-root match): the
	// server-observable proxy for match quality, maintained identically on
	// the one-by-one and batch submission paths.
	MatchLevelCounts []int `json:"match_level_counts,omitempty"`
	// MeanMatchLevel is the average LCA level over all assignments (0 when
	// none have been made).
	MeanMatchLevel float64 `json:"mean_match_level"`
	// Epoch is the serving epoch id; Rotations counts committed epoch
	// rotations, RotatedWorkers the successful re-obfuscations across all
	// of them, ParkedWorkers the workers retired with exhausted lifetime
	// budgets, and DroppedWorkers the available workers dropped at a
	// rotation for lack of a fresh report.
	Epoch          int64 `json:"epoch"`
	Rotations      int   `json:"rotations"`
	RotatedWorkers int   `json:"rotated_workers"`
	ParkedWorkers  int   `json:"parked_workers"`
	DroppedWorkers int   `json:"dropped_workers"`
	// Budget accounting (zero values when no lifetime budget is set):
	// BudgetSpentTotal is the accountant's grand total, which equals the
	// sum of every accepted fresh report's ε exactly.
	BudgetLimit      float64 `json:"budget_limit,omitempty"`
	BudgetSpentTotal float64 `json:"budget_spent_total,omitempty"`
	BudgetedAgents   int     `json:"budgeted_agents,omitempty"`
	// Policy names the server's assignment policy; PolicyCounters counts
	// the assignments it served, keyed by policy name. A server runs one
	// policy for its lifetime, so today the map holds a single entry
	// mirroring AssignedTasks — the keyed shape exists so dashboards keep
	// working if servers ever serve multiple policies side by side.
	// DefaultCapacity is
	// the per-worker capacity a registration without one receives,
	// CapacityUnits the total remaining units across available workers
	// (equal to AvailableWorkers for capacity-1 pools), and BatchWindows
	// the windows served by a window-solving policy (batch-optimal).
	Policy          string         `json:"policy,omitempty"`
	PolicyCounters  map[string]int `json:"policy_counters,omitempty"`
	DefaultCapacity int            `json:"default_capacity,omitempty"`
	CapacityUnits   int            `json:"capacity_units,omitempty"`
	BatchWindows    int64          `json:"batch_windows,omitempty"`
}

// PrepareRotateRequest stages the next epoch: a fresh HST built in the
// background while the current epoch keeps serving. Seed 0 derives the
// construction randomness deterministically from the server seed and the
// next epoch id; Refit orders the carving permutation by the report
// density observed during the serving epoch.
type PrepareRotateRequest struct {
	Seed  uint64 `json:"seed,omitempty"`
	Refit bool   `json:"refit,omitempty"`
}

// PrepareRotateResponse returns the staged epoch and the tree workers must
// re-obfuscate under.
type PrepareRotateResponse struct {
	OK     bool      `json:"ok"`
	Reason string    `json:"reason,omitempty"`
	Err    *Error    `json:"error,omitempty"`
	Epoch  int64     `json:"epoch,omitempty"`
	Tree   *hst.Tree `json:"tree,omitempty"`
}

// WorkerReport is one worker's fresh obfuscated report under a staged
// epoch's tree.
type WorkerReport struct {
	WorkerID string `json:"worker_id"`
	Code     []byte `json:"code"`
}

// RotateRequest commits a staged rotation with the fresh reports collected
// from workers. Epoch 0 commits whatever is staged.
type RotateRequest struct {
	Epoch   int64          `json:"epoch,omitempty"`
	Reports []WorkerReport `json:"reports"`
}

// RotateResponse summarises a rotation commit: how many workers rotated
// into the new epoch, which were parked (lifetime budget exhausted) or
// dropped (available but no usable fresh report), and how many reports
// were skipped (unknown, busy, duplicate, or malformed).
type RotateResponse struct {
	OK      bool     `json:"ok"`
	Reason  string   `json:"reason,omitempty"`
	Err     *Error   `json:"error,omitempty"`
	Epoch   int64    `json:"epoch,omitempty"`
	Rotated int      `json:"rotated"`
	Parked  []string `json:"parked,omitempty"`
	Dropped []string `json:"dropped,omitempty"`
	Skipped int      `json:"skipped,omitempty"`
}
