package platform

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// BenchmarkLoopbackSubmit measures one full client->server Submit round
// trip over loopback HTTP — the per-op serving cost the servebench lane
// reports as serve-submit.
func BenchmarkLoopbackSubmit(b *testing.B) {
	s := newTestServer(b)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	client, err := NewClient(ts.URL)
	if err != nil {
		b.Fatal(err)
	}
	o, err := NewObfuscator(client.Publication(), 11)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(17)
	for i := 0; i < 4096; i++ {
		w := Worker{ID: fmt.Sprintf("w%d", i), Loc: geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))}
		if err := w.Register(s, o); err != nil {
			b.Fatal(err)
		}
	}
	code := []byte(o.Obfuscate(geo.Pt(100, 100)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.Submit(TaskRequest{TaskID: "t", Code: code})
	}
}
