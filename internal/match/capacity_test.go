package match

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

func TestHSTGreedyCapacitatedBasics(t *testing.T) {
	src := rng.New(12)
	tr := buildTree(t, src, 40, 150)
	workers := []hst.Code{tr.CodeOf(0), tr.CodeOf(5)}
	g, err := NewHSTGreedyCapacitated(tr, workers, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Remaining() != 3 {
		t.Fatalf("Remaining = %d", g.Remaining())
	}
	// Tasks on worker 0's leaf: first two go to worker 0, third to 1.
	task := tr.CodeOf(0)
	if w := g.Assign(task); w != 0 {
		t.Errorf("first = %d", w)
	}
	if w := g.Assign(task); w != 0 {
		t.Errorf("second = %d (capacity 2 not honoured)", w)
	}
	if w := g.Assign(task); w != 1 {
		t.Errorf("third = %d, want 1 after exhaustion", w)
	}
	if w := g.Assign(task); w != NoWorker {
		t.Errorf("fourth = %d, want NoWorker", w)
	}
}

func TestHSTGreedyCapacitatedValidation(t *testing.T) {
	src := rng.New(13)
	tr := buildTree(t, src, 10, 50)
	ws := []hst.Code{tr.CodeOf(0)}
	if _, err := NewHSTGreedyCapacitated(tr, ws, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewHSTGreedyCapacitated(tr, ws, []int{-1}); err == nil {
		t.Error("negative capacity accepted")
	}
	// Zero-capacity workers are simply never used.
	g, err := NewHSTGreedyCapacitated(tr, ws, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if w := g.Assign(tr.CodeOf(0)); w != NoWorker {
		t.Errorf("zero-capacity worker assigned: %d", w)
	}
}

func TestCapacityOneEqualsTrie(t *testing.T) {
	// With unit capacities the capacitated matcher must behave exactly
	// like HSTGreedyTrie.
	src := rng.New(14)
	tr := buildTree(t, src, 50, 200)
	const nw = 60
	workers := make([]hst.Code, nw)
	ones := make([]int, nw)
	for i := range workers {
		workers[i] = tr.CodeOf(src.Intn(tr.NumPoints()))
		ones[i] = 1
	}
	capd, err := NewHSTGreedyCapacitated(tr, workers, ones)
	if err != nil {
		t.Fatal(err)
	}
	trie, err := NewHSTGreedyTrie(tr, workers)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < nw+5; k++ {
		task := tr.CodeOf(src.Intn(tr.NumPoints()))
		if a, b := capd.Assign(task), trie.Assign(task); a != b {
			t.Fatalf("task %d: capacitated %d ≠ trie %d", k, a, b)
		}
	}
}

func TestOptimalCapacitated(t *testing.T) {
	// Tasks at 0, 1, 10 on a line; workers at 0 (cap 2) and 10 (cap 1).
	tasks := []float64{0, 1, 10}
	workers := []float64{0, 10}
	dist := func(t_, w int) float64 { return math.Abs(tasks[t_] - workers[w]) }
	assign, cost, err := OptimalCapacitated(3, []int{2, 1}, dist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-1) > 1e-9 { // 0→w0 (0) + 1→w0 (1) + 10→w1 (0)
		t.Errorf("cost = %v, want 1", cost)
	}
	if assign[0] != 0 || assign[1] != 0 || assign[2] != 1 {
		t.Errorf("assign = %v", assign)
	}
	// Capacity respected in the solution.
	counts := map[int]int{}
	for _, w := range assign {
		counts[w]++
	}
	if counts[0] > 2 || counts[1] > 1 {
		t.Errorf("capacities violated: %v", counts)
	}
}

func TestOptimalCapacitatedErrors(t *testing.T) {
	dist := func(a, b int) float64 { return 1 }
	if _, _, err := OptimalCapacitated(3, []int{1, 1}, dist); err == nil {
		t.Error("insufficient capacity accepted")
	}
	if _, _, err := OptimalCapacitated(1, []int{-1, 5}, dist); err == nil {
		t.Error("negative capacity accepted")
	}
	if a, cost, err := OptimalCapacitated(0, []int{1}, dist); err != nil || len(a) != 0 || cost != 0 {
		t.Error("zero tasks mishandled")
	}
}

func TestOptimalCapacitatedMatchesHungarianOnUnitCaps(t *testing.T) {
	src := rng.New(15)
	for trial := 0; trial < 20; trial++ {
		n := 1 + src.Intn(6)
		m := n + src.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = src.Uniform(0, 50)
			}
		}
		caps := make([]int, m)
		for j := range caps {
			caps[j] = 1
		}
		_, want, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := OptimalCapacitated(n, caps, func(i, j int) float64 { return cost[i][j] })
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: capacitated %v ≠ Hungarian %v", trial, got, want)
		}
	}
}
