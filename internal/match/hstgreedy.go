package match

import (
	"github.com/pombm/pombm/internal/hst"
)

// HSTGreedyScan is Alg. 4 exactly as analysed in the paper: for each
// arriving task (an obfuscated leaf code) it scans every unassigned worker
// and picks one at minimal tree distance, O(D·n) per task. Ties are broken
// towards the lowest worker index.
type HSTGreedyScan struct {
	tree      *hst.Tree
	codes     []hst.Code
	used      []bool
	remaining int
}

// NewHSTGreedyScan returns the paper-faithful matcher over the reported
// worker leaf codes.
func NewHSTGreedyScan(tree *hst.Tree, workers []hst.Code) *HSTGreedyScan {
	return &HSTGreedyScan{
		tree:      tree,
		codes:     workers,
		used:      make([]bool, len(workers)),
		remaining: len(workers),
	}
}

// Remaining returns the number of unassigned workers.
func (g *HSTGreedyScan) Remaining() int { return g.remaining }

// Assign matches the task with obfuscated leaf t to a tree-nearest
// unassigned worker and consumes it. Returns NoWorker when exhausted.
func (g *HSTGreedyScan) Assign(t hst.Code) int {
	if g.remaining == 0 {
		return NoWorker
	}
	best, bestLvl := NoWorker, g.tree.Depth()+1
	for i, c := range g.codes {
		if g.used[i] {
			continue
		}
		if lvl := g.tree.LCALevel(t, c); lvl < bestLvl {
			best, bestLvl = i, lvl
			if lvl == 0 {
				break // cannot improve on a co-located worker
			}
		}
	}
	g.used[best] = true
	g.remaining--
	return best
}

// HSTGreedyTrie implements the same assignment rule through the leaf-code
// trie, answering each task in O(D) instead of O(D·n). Within an LCA level
// ties are broken arbitrarily — exactly the freedom Alg. 4 grants — so its
// totals match HSTGreedyScan's in tree distance though not necessarily in
// chosen worker ids.
type HSTGreedyTrie struct {
	tree      *hst.Tree
	index     *hst.LeafIndex
	remaining int
}

// NewHSTGreedyTrie returns the indexed matcher over the reported worker
// leaf codes.
func NewHSTGreedyTrie(tree *hst.Tree, workers []hst.Code) (*HSTGreedyTrie, error) {
	idx := hst.NewLeafIndexDegree(tree.Depth(), tree.Degree())
	for i, c := range workers {
		if err := idx.Insert(c, i); err != nil {
			return nil, err
		}
	}
	return &HSTGreedyTrie{
		tree:      tree,
		index:     idx,
		remaining: len(workers),
	}, nil
}

// Remaining returns the number of unassigned workers.
func (g *HSTGreedyTrie) Remaining() int { return g.remaining }

// Assign matches the task with obfuscated leaf t to a tree-nearest
// unassigned worker and consumes it. Returns NoWorker when exhausted.
func (g *HSTGreedyTrie) Assign(t hst.Code) int {
	id, _, ok := g.index.PopNearest(t)
	if !ok {
		return NoWorker
	}
	g.remaining--
	return id
}
