package match

import (
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

func engineTestTree(t *testing.T) *hst.Tree {
	t.Helper()
	grid, err := geo.NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hst.Build(grid.Points(), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestHSTGreedyEngineMatchesScan(t *testing.T) {
	tree := engineTestTree(t)
	src := rng.New(31)
	randLeaf := func() hst.Code {
		b := make([]byte, tree.Depth())
		for i := range b {
			b[i] = byte(src.Intn(tree.Degree()))
		}
		return hst.Code(b)
	}
	workers := make([]hst.Code, 180)
	for i := range workers {
		workers[i] = randLeaf()
	}
	eng, err := NewHSTGreedyEngine(tree, workers, 4)
	if err != nil {
		t.Fatal(err)
	}
	scan := NewHSTGreedyScan(tree, workers)
	if eng.Remaining() != scan.Remaining() {
		t.Fatalf("Remaining: engine %d, scan %d", eng.Remaining(), scan.Remaining())
	}
	for i := 0; i < len(workers)+5; i++ {
		task := randLeaf()
		if got, want := eng.Assign(task), scan.Assign(task); got != want {
			t.Fatalf("task %d: engine %d, scan %d", i, got, want)
		}
		if eng.Remaining() != scan.Remaining() {
			t.Fatalf("task %d: Remaining diverged %d vs %d", i, eng.Remaining(), scan.Remaining())
		}
	}
}

func TestHSTGreedyEngineAssignBatch(t *testing.T) {
	tree := engineTestTree(t)
	src := rng.New(32)
	randLeaf := func() hst.Code {
		b := make([]byte, tree.Depth())
		for i := range b {
			b[i] = byte(src.Intn(tree.Degree()))
		}
		return hst.Code(b)
	}
	workers := make([]hst.Code, 60)
	for i := range workers {
		workers[i] = randLeaf()
	}
	tasks := make([]hst.Code, 70)
	for i := range tasks {
		tasks[i] = randLeaf()
	}
	eng, err := NewHSTGreedyEngine(tree, workers, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewHSTGreedyEngine(tree, workers, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := eng.AssignBatch(tasks)
	for i, task := range tasks {
		if want := seq.Assign(task); got[i] != want {
			t.Fatalf("task %d: batch %d, sequential %d", i, got[i], want)
		}
	}
	if eng.Remaining() != 0 {
		t.Errorf("Remaining = %d after over-subscribed batch", eng.Remaining())
	}
}

func TestHSTGreedyEngineRejectsBadWorkers(t *testing.T) {
	tree := engineTestTree(t)
	if _, err := NewHSTGreedyEngine(tree, []hst.Code{"x"}, 2); err == nil {
		t.Error("malformed worker code accepted")
	}
}
