package match

import (
	"math"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/privacy"
)

// SizeWorker is a worker in the matching-size case study (Sec. IV-C): the
// bipartite graph is incomplete — a worker can only serve tasks within its
// reachable distance.
type SizeWorker struct {
	Reported geo.Point // obfuscated location as seen by the server
	Code     hst.Code  // obfuscated leaf (TBF only; empty for Prob)
	Reach    float64   // reachable radius, known to the server
}

// TBFSize is the paper's tree-based matcher for the size objective: each
// arriving task is assigned to the nearest worker *on the HST* among the
// unassigned workers that look reachable on the reported data.
type TBFSize struct {
	tree      *hst.Tree
	workers   []SizeWorker
	used      []bool
	remaining int
}

// NewTBFSize returns the matcher over the reported worker data.
func NewTBFSize(tree *hst.Tree, workers []SizeWorker) *TBFSize {
	return &TBFSize{
		tree:      tree,
		workers:   workers,
		used:      make([]bool, len(workers)),
		remaining: len(workers),
	}
}

// Remaining returns the number of unassigned workers.
func (m *TBFSize) Remaining() int { return m.remaining }

// Assign matches a task (reported point and obfuscated leaf) to the
// tree-nearest unassigned worker whose reported distance is within its
// reach. It returns NoWorker when no reachable worker remains.
func (m *TBFSize) Assign(taskPt geo.Point, taskCode hst.Code) int {
	if m.remaining == 0 {
		return NoWorker
	}
	best, bestLvl := NoWorker, m.tree.Depth()+1
	for i := range m.workers {
		if m.used[i] {
			continue
		}
		w := &m.workers[i]
		if taskPt.Dist(w.Reported) > w.Reach {
			continue
		}
		if lvl := m.tree.LCALevel(taskCode, w.Code); lvl < bestLvl {
			best, bestLvl = i, lvl
		}
	}
	if best == NoWorker {
		return NoWorker
	}
	m.used[best] = true
	m.remaining--
	return best
}

// ProbSize is the Prob baseline (To et al., ICDE'18): workers and tasks are
// obfuscated with planar Laplace, and each arriving task is assigned to the
// unassigned worker with the greatest posterior probability of actually
// being reachable, computed by integrating the Laplace radial kernel
// against the reachable disc (privacy.CaptureProb). Workers whose
// acceptance probability falls below MinProb are not considered.
type ProbSize struct {
	workers   []SizeWorker
	used      []bool
	remaining int

	// NoiseEps is the effective budget describing the *relative* noise
	// between a reported worker and a reported task. With both sides
	// obfuscated at ε, the combined displacement has twice the variance of
	// a single planar Laplace, matching a single mechanism at ε/√2.
	NoiseEps float64
	// MinProb is the acceptance-probability threshold below which a task
	// is left unassigned rather than sent to a hopeless worker.
	MinProb float64

	// cache memoises CaptureProb on a quantised (distance, reach) lattice;
	// the integral is smooth, so quantisation error is far below the noise
	// the posterior already carries.
	cache  map[probKey]float64
	cutoff float64 // distances beyond reach+cutoff have negligible posterior
}

type probKey struct{ d, r int32 }

// probQuantum is the lattice pitch for memoised capture probabilities.
const probQuantum = 0.25

// DefaultMinProb is the default acceptance threshold of ProbSize.
const DefaultMinProb = 0.05

// NewProbSize returns the Prob matcher. eps is the per-party budget used by
// the Laplace obfuscation.
func NewProbSize(workers []SizeWorker, eps float64) *ProbSize {
	noiseEps := eps / math.Sqrt2
	return &ProbSize{
		workers:   workers,
		used:      make([]bool, len(workers)),
		remaining: len(workers),
		NoiseEps:  noiseEps,
		MinProb:   DefaultMinProb,
		cache:     make(map[probKey]float64),
		cutoff:    12 / noiseEps,
	}
}

// Remaining returns the number of unassigned workers.
func (m *ProbSize) Remaining() int { return m.remaining }

// CacheBytes reports the approximate size of the memoised posterior table,
// for memory accounting.
func (m *ProbSize) CacheBytes() uint64 {
	// probKey (8) + float64 (8) + map overhead (~32 per bucket entry).
	return uint64(len(m.cache)) * 48
}

// captureProb returns the memoised reachability posterior.
func (m *ProbSize) captureProb(d, reach float64) float64 {
	if d > reach+m.cutoff {
		return 0 // tail mass below e^{-12}; never competitive
	}
	key := probKey{int32(d / probQuantum), int32(reach / probQuantum)}
	if p, ok := m.cache[key]; ok {
		return p
	}
	p := privacy.CaptureProb(m.NoiseEps,
		(float64(key.d)+0.5)*probQuantum, (float64(key.r)+0.5)*probQuantum)
	m.cache[key] = p
	return p
}

// Assign matches a task (reported point) to the unassigned worker with the
// highest reachability posterior, or returns NoWorker when every posterior
// is below MinProb.
func (m *ProbSize) Assign(taskPt geo.Point) int {
	if m.remaining == 0 {
		return NoWorker
	}
	best, bestP := NoWorker, m.MinProb
	for i := range m.workers {
		if m.used[i] {
			continue
		}
		w := &m.workers[i]
		p := m.captureProb(taskPt.Dist(w.Reported), w.Reach)
		if p > bestP {
			best, bestP = i, p
		}
	}
	if best == NoWorker {
		return NoWorker
	}
	m.used[best] = true
	m.remaining--
	return best
}
