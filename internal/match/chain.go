package match

import (
	"github.com/pombm/pombm/internal/hst"
)

// HSTChain is the randomized tree-matching rule of Bansal, Buchbinder,
// Gupta and Naor (Algorithmica 2014) — reference [19] of the paper and,
// together with Meyerson et al., the source of the O(log N · log² k)
// bound TBF's analysis builds on. A task is first routed to its
// tree-nearest worker *including already-matched ones*; if that worker is
// matched, the search continues from the matched worker's leaf (excluding
// workers already visited by this chain) until an unmatched worker is
// found, which receives the task.
//
// Compared with HST-Greedy, the chain rule spreads assignments along the
// path occupied workers "point" to, which is what yields the improved
// worst-case guarantee on trees. It is provided as an extension matcher:
// the paper evaluates greedy only.
type HSTChain struct {
	tree      *hst.Tree
	codes     []hst.Code
	all       *hst.LeafIndex // every worker, matched or not
	free      *hst.LeafIndex // unmatched workers only
	remaining int
}

// NewHSTChain returns the chain matcher over the reported worker leaves.
func NewHSTChain(tree *hst.Tree, workers []hst.Code) (*HSTChain, error) {
	all := hst.NewLeafIndexDegree(tree.Depth(), tree.Degree())
	free := hst.NewLeafIndexDegree(tree.Depth(), tree.Degree())
	for i, c := range workers {
		if err := all.Insert(c, i); err != nil {
			return nil, err
		}
		if err := free.Insert(c, i); err != nil {
			return nil, err
		}
	}
	return &HSTChain{
		tree:      tree,
		codes:     workers,
		all:       all,
		free:      free,
		remaining: len(workers),
	}, nil
}

// Remaining returns the number of unmatched workers.
func (g *HSTChain) Remaining() int { return g.remaining }

// Assign routes the task through the chain rule and returns the unmatched
// worker that terminates the chain, or NoWorker when none remains. The
// chain visits each worker at most once, so it terminates in at most n
// steps; each step costs O(D).
func (g *HSTChain) Assign(t hst.Code) int {
	if g.remaining == 0 {
		return NoWorker
	}
	// Workers temporarily removed from the "all" index during this chain;
	// restored before returning.
	var visited []int
	cur := t
	result := NoWorker
	for {
		id, _, ok := g.all.Nearest(cur)
		if !ok {
			// All workers visited and matched: fall back to the nearest
			// unmatched one from the chain's current position.
			id, _, ok = g.free.Nearest(cur)
			if !ok {
				break
			}
			result = id
			break
		}
		if g.free.Remove(g.codes[id], id) {
			// id was unmatched: the chain terminates here.
			result = id
			break
		}
		// id is matched: continue the chain from its leaf.
		g.all.Remove(g.codes[id], id)
		visited = append(visited, id)
		cur = g.codes[id]
	}
	for _, id := range visited {
		g.all.Insert(g.codes[id], id)
	}
	if result == NoWorker {
		return NoWorker
	}
	// The chosen worker becomes matched: it stays in "all" (chains may
	// route through it) but leaves "free" (already removed above).
	g.remaining--
	return result
}
