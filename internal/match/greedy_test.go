package match

import (
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

func TestEuclideanGreedyBasics(t *testing.T) {
	workers := []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(20, 0)}
	g := NewEuclideanGreedy(workers)
	if g.Remaining() != 3 {
		t.Fatalf("Remaining = %d", g.Remaining())
	}
	if got := g.Assign(geo.Pt(9, 0)); got != 1 {
		t.Errorf("first task → worker %d, want 1", got)
	}
	// Worker 1 consumed; nearest remaining to (9,0) is worker 0 (d=9 vs 11).
	if got := g.Assign(geo.Pt(9, 0)); got != 0 {
		t.Errorf("second task → worker %d, want 0", got)
	}
	if got := g.Assign(geo.Pt(0, 0)); got != 2 {
		t.Errorf("third task → worker %d, want 2", got)
	}
	if got := g.Assign(geo.Pt(0, 0)); got != NoWorker {
		t.Errorf("exhausted matcher returned %d", got)
	}
	if g.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhaustion", g.Remaining())
	}
}

func TestEuclideanGreedyPicksNearestEveryTime(t *testing.T) {
	src := rng.New(40)
	workers := make([]geo.Point, 200)
	for i := range workers {
		workers[i] = geo.Pt(src.Uniform(0, 100), src.Uniform(0, 100))
	}
	g := NewEuclideanGreedy(workers)
	used := make([]bool, len(workers))
	for step := 0; step < 150; step++ {
		task := geo.Pt(src.Uniform(0, 100), src.Uniform(0, 100))
		got := g.Assign(task)
		// Brute-force: nearest unassigned worker.
		best, bestD := -1, 1e18
		for i, w := range workers {
			if used[i] {
				continue
			}
			if d := task.Dist2(w); d < bestD {
				best, bestD = i, d
			}
		}
		if got != best {
			t.Fatalf("step %d: Assign = %d, brute = %d", step, got, best)
		}
		used[got] = true
	}
}

func TestEuclideanGreedyEmptyWorkerSet(t *testing.T) {
	g := NewEuclideanGreedy(nil)
	if got := g.Assign(geo.Pt(1, 1)); got != NoWorker {
		t.Errorf("empty set returned %d", got)
	}
}
