package match

import (
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

func TestHSTChainBasics(t *testing.T) {
	src := rng.New(77)
	tr := buildTree(t, src, 40, 150)
	workers := []hst.Code{tr.CodeOf(0), tr.CodeOf(1), tr.CodeOf(2)}
	g, err := NewHSTChain(tr, workers)
	if err != nil {
		t.Fatal(err)
	}
	if g.Remaining() != 3 {
		t.Fatalf("Remaining = %d", g.Remaining())
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		w := g.Assign(tr.CodeOf(i))
		if w == NoWorker {
			t.Fatalf("assignment %d failed with workers remaining", i)
		}
		if seen[w] {
			t.Fatalf("worker %d assigned twice", w)
		}
		seen[w] = true
	}
	if g.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhaustion", g.Remaining())
	}
	if w := g.Assign(tr.CodeOf(0)); w != NoWorker {
		t.Errorf("assigned %d from empty pool", w)
	}
}

func TestHSTChainFirstAssignmentMatchesGreedy(t *testing.T) {
	// With no matched workers yet, the chain terminates at its first hop:
	// identical to HST-Greedy on the first task.
	src := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		s := src.DeriveN("t", trial)
		tr := buildTree(t, s, 50, 200)
		nw := 30
		workers := make([]hst.Code, nw)
		for i := range workers {
			workers[i] = tr.CodeOf(s.Intn(tr.NumPoints()))
		}
		chain, err := NewHSTChain(tr, workers)
		if err != nil {
			t.Fatal(err)
		}
		greedy := NewHSTGreedyScan(tr, workers)
		task := tr.CodeOf(s.Intn(tr.NumPoints()))
		if cw, gw := chain.Assign(task), greedy.Assign(task); cw != gw {
			t.Fatalf("trial %d: chain %d ≠ greedy %d on first task", trial, cw, gw)
		}
	}
}

func TestHSTChainInjectiveOverFullStream(t *testing.T) {
	src := rng.New(55)
	tr := buildTree(t, src, 60, 200)
	const nw = 80
	workers := make([]hst.Code, nw)
	for i := range workers {
		workers[i] = tr.CodeOf(src.Intn(tr.NumPoints()))
	}
	g, err := NewHSTChain(tr, workers)
	if err != nil {
		t.Fatal(err)
	}
	assigned := map[int]bool{}
	count := 0
	for k := 0; k < nw+20; k++ {
		task := tr.CodeOf(src.Intn(tr.NumPoints()))
		w := g.Assign(task)
		if w == NoWorker {
			if count != nw {
				t.Fatalf("NoWorker with %d of %d assigned", count, nw)
			}
			continue
		}
		if assigned[w] {
			t.Fatalf("worker %d assigned twice", w)
		}
		assigned[w] = true
		count++
	}
	if count != nw {
		t.Errorf("assigned %d of %d workers", count, nw)
	}
}

func TestHSTChainRoutesThroughMatchedWorkers(t *testing.T) {
	// Construct a line of three co-located groups on the Example 1 tree:
	// worker A on the task's leaf (will be matched first), worker B far
	// away. After A is matched, a second task at the same leaf must chain
	// through A and still find B.
	pts := []geo.Point{geo.Pt(1, 1), geo.Pt(2, 3), geo.Pt(5, 3), geo.Pt(4, 4)}
	tr, err := hst.BuildWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	workers := []hst.Code{tr.CodeOf(0), tr.CodeOf(2)} // A at o1, B at o3
	g, err := NewHSTChain(tr, workers)
	if err != nil {
		t.Fatal(err)
	}
	if w := g.Assign(tr.CodeOf(0)); w != 0 {
		t.Fatalf("first task → %d, want 0 (A)", w)
	}
	if w := g.Assign(tr.CodeOf(0)); w != 1 {
		t.Fatalf("second task → %d, want 1 (B, via chain through A)", w)
	}
}
