package match

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/rng"
)

// bruteForceAssign enumerates every injective row→column assignment of an
// n×m cost matrix (n ≤ m) and returns the minimum total cost — the oracle
// both solvers must agree with on small instances.
func bruteForceAssign(cost [][]float64) float64 {
	n := len(cost)
	if n == 0 {
		return 0
	}
	m := len(cost[0])
	used := make([]bool, m)
	best := math.Inf(1)
	var rec func(row int, total float64)
	rec = func(row int, total float64) {
		if total >= best {
			return
		}
		if row == n {
			best = total
			return
		}
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			rec(row+1, total+cost[row][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

// TestAssignmentSolversAgree is the differential test: Hungarian, the flow
// solver, and brute-force enumeration must report the same minimum total
// cost on random small instances. Seeded and table-driven so a failure
// reproduces exactly.
func TestAssignmentSolversAgree(t *testing.T) {
	cases := []struct {
		name string
		n, m int
		seed uint64
		reps int
	}{
		{"square-2", 2, 2, 101, 50},
		{"square-3", 3, 3, 202, 50},
		{"square-4", 4, 4, 303, 30},
		{"square-5", 5, 5, 404, 20},
		{"rect-2x4", 2, 4, 505, 50},
		{"rect-3x5", 3, 5, 606, 30},
		{"rect-4x6", 4, 6, 707, 20},
		{"rect-1x7", 1, 7, 808, 50},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			src := rng.New(tc.seed)
			for rep := 0; rep < tc.reps; rep++ {
				cost := make([][]float64, tc.n)
				for i := range cost {
					cost[i] = make([]float64, tc.m)
					for j := range cost[i] {
						// Mixed magnitudes, including exact ties (small
						// integer grid), to stress tie handling.
						cost[i][j] = float64(src.Intn(8)) + 0.25*float64(src.Intn(4))
					}
				}
				hAssign, hTotal, err := Hungarian(cost)
				if err != nil {
					t.Fatalf("rep %d: Hungarian: %v", rep, err)
				}
				fAssign, fTotal, err := AssignViaFlow(cost)
				if err != nil {
					t.Fatalf("rep %d: AssignViaFlow: %v", rep, err)
				}
				bTotal := bruteForceAssign(cost)
				if math.Abs(hTotal-bTotal) > 1e-9 {
					t.Fatalf("rep %d: Hungarian total %v, brute force %v (cost %v)", rep, hTotal, bTotal, cost)
				}
				if math.Abs(fTotal-bTotal) > 1e-9 {
					t.Fatalf("rep %d: flow total %v, brute force %v (cost %v)", rep, fTotal, bTotal, cost)
				}
				// Each solver's own assignment must be injective and cost
				// what it claims.
				for name, assign := range map[string][]int{"hungarian": hAssign, "flow": fAssign} {
					seen := make(map[int]bool, tc.n)
					total := 0.0
					for i, j := range assign {
						if j < 0 || j >= tc.m || seen[j] {
							t.Fatalf("rep %d: %s assignment invalid: %v", rep, name, assign)
						}
						seen[j] = true
						total += cost[i][j]
					}
					if math.Abs(total-bTotal) > 1e-9 {
						t.Fatalf("rep %d: %s assignment costs %v, claims optimal %v", rep, name, total, bTotal)
					}
				}
			}
		})
	}
}
