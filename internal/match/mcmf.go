package match

import (
	"errors"

	"github.com/pombm/pombm/internal/flow"
)

// MinCostFlow is the successive-shortest-path min-cost max-flow solver the
// matchers build on, re-exported from internal/flow (shared with the
// engine's batch-optimal assignment policy). It provides an independent
// oracle for the Hungarian algorithm in tests and supports
// capacity-constrained assignment variants (e.g. workers that may serve
// several tasks).
type MinCostFlow = flow.MinCostFlow

// NewMinCostFlow returns a solver over n nodes (0..n−1).
func NewMinCostFlow(n int) *MinCostFlow {
	return flow.NewMinCostFlow(n)
}

// AssignViaFlow solves the same rectangular assignment problem as
// Hungarian through min-cost max-flow, returning the column per row and the
// total cost. Used as a cross-check and for instances with side constraints.
// Cost entries must be finite: NaN or ±Inf costs are rejected with an error
// rather than silently corrupting the shortest-path search.
func AssignViaFlow(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, ErrShape
	}
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, errors.New("match: ragged cost matrix")
		}
	}
	if err := checkFinite(cost); err != nil {
		return nil, 0, err
	}
	// Nodes: 0 = source, 1..n = rows, n+1..n+m = columns, n+m+1 = sink.
	src, sink := 0, n+m+1
	f := NewMinCostFlow(n + m + 2)
	for i := 0; i < n; i++ {
		if _, err := f.AddEdge(src, 1+i, 1, 0); err != nil {
			return nil, 0, err
		}
	}
	rowColBase := f.NumEdges()
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if _, err := f.AddEdge(1+i, 1+n+j, 1, cost[i][j]); err != nil {
				return nil, 0, err
			}
		}
	}
	for j := 0; j < m; j++ {
		if _, err := f.AddEdge(1+n+j, sink, 1, 0); err != nil {
			return nil, 0, err
		}
	}
	flown, total := f.Run(src, sink, n)
	if flown < n {
		return nil, 0, errors.New("match: flow could not saturate all rows")
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		assign[i] = NoWorker
		for j := 0; j < m; j++ {
			e := rowColBase + 2*(i*m+j)
			if f.Residual(e) == 0 { // forward edge saturated
				assign[i] = j
				break
			}
		}
	}
	return assign, total, nil
}
