package match

import (
	"errors"
	"math"
)

// MinCostFlow is a successive-shortest-path min-cost max-flow solver over a
// directed graph with integer capacities and float64 costs. It provides an
// independent oracle for the Hungarian algorithm in tests and supports
// capacity-constrained assignment variants (e.g. workers that may serve
// several tasks).
type MinCostFlow struct {
	n    int
	head [][]int // adjacency: node → edge ids
	to   []int
	capa []int
	cost []float64
}

// NewMinCostFlow returns a solver over n nodes (0..n−1).
func NewMinCostFlow(n int) *MinCostFlow {
	return &MinCostFlow{n: n, head: make([][]int, n)}
}

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, plus its residual reverse edge.
func (f *MinCostFlow) AddEdge(u, v, capacity int, cost float64) {
	f.head[u] = append(f.head[u], len(f.to))
	f.to = append(f.to, v)
	f.capa = append(f.capa, capacity)
	f.cost = append(f.cost, cost)

	f.head[v] = append(f.head[v], len(f.to))
	f.to = append(f.to, u)
	f.capa = append(f.capa, 0)
	f.cost = append(f.cost, -cost)
}

// Run pushes up to maxFlow units from s to t along successive
// shortest-cost augmenting paths (SPFA, which tolerates the negative
// residual arcs). It returns the flow achieved and its total cost.
func (f *MinCostFlow) Run(s, t, maxFlow int) (int, float64) {
	flow := 0
	var total float64
	dist := make([]float64, f.n)
	inQueue := make([]bool, f.n)
	prevEdge := make([]int, f.n)
	for flow < maxFlow {
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for _, e := range f.head[u] {
				if f.capa[e] <= 0 {
					continue
				}
				v := f.to[e]
				if nd := dist[u] + f.cost[e]; nd < dist[v]-1e-12 {
					dist[v] = nd
					prevEdge[v] = e
					if !inQueue[v] {
						inQueue[v] = true
						queue = append(queue, v)
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no augmenting path remains
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		for v := t; v != s; {
			e := prevEdge[v]
			if f.capa[e] < push {
				push = f.capa[e]
			}
			v = f.to[e^1]
		}
		for v := t; v != s; {
			e := prevEdge[v]
			f.capa[e] -= push
			f.capa[e^1] += push
			v = f.to[e^1]
		}
		flow += push
		total += dist[t] * float64(push)
	}
	return flow, total
}

// AssignViaFlow solves the same rectangular assignment problem as
// Hungarian through min-cost max-flow, returning the column per row and the
// total cost. Used as a cross-check and for instances with side constraints.
func AssignViaFlow(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, ErrShape
	}
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, errors.New("match: ragged cost matrix")
		}
	}
	// Nodes: 0 = source, 1..n = rows, n+1..n+m = columns, n+m+1 = sink.
	src, sink := 0, n+m+1
	f := NewMinCostFlow(n + m + 2)
	for i := 0; i < n; i++ {
		f.AddEdge(src, 1+i, 1, 0)
	}
	rowColBase := len(f.to)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			f.AddEdge(1+i, 1+n+j, 1, cost[i][j])
		}
	}
	for j := 0; j < m; j++ {
		f.AddEdge(1+n+j, sink, 1, 0)
	}
	flow, total := f.Run(src, sink, n)
	if flow < n {
		return nil, 0, errors.New("match: flow could not saturate all rows")
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		assign[i] = NoWorker
		for j := 0; j < m; j++ {
			e := rowColBase + 2*(i*m+j)
			if f.capa[e] == 0 { // forward edge saturated
				assign[i] = j
				break
			}
		}
	}
	return assign, total, nil
}
