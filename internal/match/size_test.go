package match

import (
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/privacy"
	"github.com/pombm/pombm/internal/rng"
)

func TestTBFSizeRespectsReach(t *testing.T) {
	pts := []geo.Point{geo.Pt(1, 1), geo.Pt(2, 3), geo.Pt(5, 3), geo.Pt(4, 4)}
	tr, err := hst.BuildWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	workers := []SizeWorker{
		{Reported: pts[1], Code: tr.CodeOf(1), Reach: 0.5}, // unreachable from o4
		{Reported: pts[2], Code: tr.CodeOf(2), Reach: 5},   // reachable
	}
	m := NewTBFSize(tr, workers)
	// Task at o4: only worker 1 is reachable.
	if got := m.Assign(pts[3], tr.CodeOf(3)); got != 1 {
		t.Errorf("assign = %d, want 1", got)
	}
	// Same task again: worker 0 unreachable → NoWorker.
	if got := m.Assign(pts[3], tr.CodeOf(3)); got != NoWorker {
		t.Errorf("unreachable worker assigned: %d", got)
	}
	if m.Remaining() != 1 {
		t.Errorf("Remaining = %d", m.Remaining())
	}
}

func TestTBFSizePrefersTreeNearestAmongReachable(t *testing.T) {
	pts := []geo.Point{geo.Pt(1, 1), geo.Pt(2, 3), geo.Pt(5, 3), geo.Pt(4, 4)}
	tr, err := hst.BuildWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Both reachable; o3 (idx 1 here) is tree-closer to o4 than o2.
	workers := []SizeWorker{
		{Reported: pts[1], Code: tr.CodeOf(1), Reach: 100},
		{Reported: pts[2], Code: tr.CodeOf(2), Reach: 100},
	}
	m := NewTBFSize(tr, workers)
	if got := m.Assign(pts[3], tr.CodeOf(3)); got != 1 {
		t.Errorf("assign = %d, want tree-nearest 1", got)
	}
}

func TestProbSizeRanksByPosterior(t *testing.T) {
	// Two workers at distances 2 and 15 with equal reach: the nearer one
	// has the strictly larger capture probability and must win.
	workers := []SizeWorker{
		{Reported: geo.Pt(15, 0), Reach: 5},
		{Reported: geo.Pt(2, 0), Reach: 5},
	}
	m := NewProbSize(workers, 0.5)
	if got := m.Assign(geo.Pt(0, 0)); got != 1 {
		t.Errorf("assign = %d, want 1", got)
	}
	if m.Remaining() != 1 {
		t.Errorf("Remaining = %d", m.Remaining())
	}
}

func TestProbSizeThreshold(t *testing.T) {
	// A hopeless worker (far beyond reach) must not be assigned.
	workers := []SizeWorker{{Reported: geo.Pt(500, 0), Reach: 2}}
	m := NewProbSize(workers, 1.0)
	if got := m.Assign(geo.Pt(0, 0)); got != NoWorker {
		t.Errorf("hopeless worker assigned: %d", got)
	}
	if m.Remaining() != 1 {
		t.Error("worker consumed despite no assignment")
	}
}

func TestProbSizeCacheMatchesDirect(t *testing.T) {
	workers := []SizeWorker{{Reported: geo.Pt(3, 0), Reach: 6}}
	m := NewProbSize(workers, 0.8)
	for _, d := range []float64{0, 1, 3.3, 6.8, 12} {
		got := m.captureProb(d, 6)
		// Quantisation: the cached value is the integral at the bucket
		// centre; it must be within the Lipschitz slack of the exact one.
		want := privacy.CaptureProb(m.NoiseEps, d, 6)
		if diff := got - want; diff > 0.12 || diff < -0.12 {
			t.Errorf("captureProb(%v) = %v, exact %v", d, got, want)
		}
	}
	if len(m.cache) == 0 {
		t.Error("cache unused")
	}
}

func TestProbSizeExhaustion(t *testing.T) {
	workers := []SizeWorker{{Reported: geo.Pt(0, 0), Reach: 10}}
	m := NewProbSize(workers, 0.5)
	if got := m.Assign(geo.Pt(1, 0)); got != 0 {
		t.Fatalf("assign = %d", got)
	}
	if got := m.Assign(geo.Pt(1, 0)); got != NoWorker {
		t.Errorf("assigned from empty pool: %d", got)
	}
}

func TestSizeMatchersConsistencyOnRandomStreams(t *testing.T) {
	// Smoke test at moderate scale: both matchers produce injective
	// assignments and respect their eligibility rules.
	src := rng.New(31)
	tr := buildTree(t, src, 80, 200)
	nw := 120
	workers := make([]SizeWorker, nw)
	for i := range workers {
		p := tr.Point(src.Intn(tr.NumPoints()))
		workers[i] = SizeWorker{
			Reported: p,
			Code:     tr.CodeOf(src.Intn(tr.NumPoints())),
			Reach:    src.Uniform(10, 20),
		}
	}
	tbf := NewTBFSize(tr, workers)
	prob := NewProbSize(workers, 0.6)
	seenT := map[int]bool{}
	seenP := map[int]bool{}
	for k := 0; k < 200; k++ {
		pt := geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))
		code := tr.CodeOf(src.Intn(tr.NumPoints()))
		if w := tbf.Assign(pt, code); w != NoWorker {
			if seenT[w] {
				t.Fatalf("TBF reused worker %d", w)
			}
			seenT[w] = true
			if pt.Dist(workers[w].Reported) > workers[w].Reach {
				t.Fatalf("TBF ignored reach")
			}
		}
		if w := prob.Assign(pt); w != NoWorker {
			if seenP[w] {
				t.Fatalf("Prob reused worker %d", w)
			}
			seenP[w] = true
		}
	}
}
