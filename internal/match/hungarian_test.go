package match

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/rng"
)

func TestHungarianKnownInstances(t *testing.T) {
	tests := []struct {
		name string
		cost [][]float64
		want float64
	}{
		{"1x1", [][]float64{{7}}, 7},
		{"identity best", [][]float64{{1, 9}, {9, 1}}, 2},
		{"anti-diagonal best", [][]float64{{9, 1}, {1, 9}}, 2},
		{"classic 3x3", [][]float64{
			{4, 1, 3},
			{2, 0, 5},
			{3, 2, 2},
		}, 5}, // (0,1)+(1,0)+(2,2) = 1+2+2
		{"rectangular 2x4", [][]float64{
			{5, 4, 3, 8},
			{6, 7, 2, 9},
		}, 6}, // (0,1)+(1,2) = 4+2
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			assign, total, err := Hungarian(tt.cost)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(total-tt.want) > 1e-9 {
				t.Errorf("total = %v, want %v", total, tt.want)
			}
			// Assignment must be a valid injective mapping consistent with
			// the reported total.
			seen := map[int]bool{}
			var check float64
			for i, j := range assign {
				if j < 0 || j >= len(tt.cost[0]) || seen[j] {
					t.Fatalf("invalid assignment %v", assign)
				}
				seen[j] = true
				check += tt.cost[i][j]
			}
			if math.Abs(check-total) > 1e-9 {
				t.Errorf("assignment cost %v ≠ reported %v", check, total)
			}
		})
	}
}

func TestHungarianErrors(t *testing.T) {
	if _, _, err := Hungarian([][]float64{{1, 2}, {3, 4}, {5, 6}}); err == nil {
		t.Error("rows > cols accepted")
	}
	if _, _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if assign, total, err := Hungarian(nil); err != nil || assign != nil || total != 0 {
		t.Error("empty matrix mishandled")
	}
}

// TestHungarianMatchesBruteForce enumerates all assignments on small random
// instances.
func TestHungarianMatchesBruteForce(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 100; trial++ {
		n := 1 + src.Intn(5)
		m := n + src.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(src.Uniform(0, 100)) / 4
			}
		}
		_, got, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAssignment(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Hungarian %v, brute %v (cost %v)", trial, got, want, cost)
		}
	}
}

// bruteAssignment exhaustively minimises over injective row→column maps.
func bruteAssignment(cost [][]float64) float64 {
	n, m := len(cost), len(cost[0])
	usedCols := make([]bool, m)
	best := math.Inf(1)
	var rec func(row int, acc float64)
	rec = func(row int, acc float64) {
		if acc >= best {
			return
		}
		if row == n {
			best = acc
			return
		}
		for j := 0; j < m; j++ {
			if !usedCols[j] {
				usedCols[j] = true
				rec(row+1, acc+cost[row][j])
				usedCols[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestHungarianAgreesWithFlow(t *testing.T) {
	src := rng.New(1234)
	for trial := 0; trial < 30; trial++ {
		n := 2 + src.Intn(18)
		m := n + src.Intn(10)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = src.Uniform(0, 50)
			}
		}
		_, hTotal, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		_, fTotal, err := AssignViaFlow(cost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hTotal-fTotal) > 1e-6 {
			t.Fatalf("trial %d: Hungarian %v ≠ flow %v", trial, hTotal, fTotal)
		}
	}
}

func TestOptimalHandlesBothOrientations(t *testing.T) {
	dist := func(t_, w int) float64 {
		// Tasks at 0, 10; workers at 1, 8, 12 on a line.
		tasks := []float64{0, 10}
		workers := []float64{1, 8, 12}
		return math.Abs(tasks[t_] - workers[w])
	}
	assign, total, err := Optimal(2, 3, dist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-3) > 1e-9 { // 0→1 (1) + 10→8 (2)
		t.Errorf("total = %v, want 3", total)
	}
	if assign[0] != 0 || assign[1] != 1 {
		t.Errorf("assign = %v", assign)
	}
	// More tasks than workers: two of three tasks matched.
	distT := func(t_, w int) float64 {
		tasks := []float64{0, 10, 20}
		workers := []float64{1, 19}
		return math.Abs(tasks[t_] - workers[w])
	}
	assign, total, err = Optimal(3, 2, distT)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-2) > 1e-9 { // 0→1 (1) + 20→19 (1)
		t.Errorf("transposed total = %v, want 2", total)
	}
	if assign[0] != 0 || assign[1] != NoWorker || assign[2] != 1 {
		t.Errorf("transposed assign = %v", assign)
	}
	// Degenerate sides.
	if a, tot, err := Optimal(0, 5, nil); err != nil || len(a) != 0 || tot != 0 {
		t.Error("no-task case mishandled")
	}
	a, tot, err := Optimal(2, 0, nil)
	if err != nil || tot != 0 || a[0] != NoWorker || a[1] != NoWorker {
		t.Error("no-worker case mishandled")
	}
}
