package match

import (
	"math"
	"testing"
)

func TestMinCostFlowSimplePath(t *testing.T) {
	// s→a→t with capacity 3, cost 1+2 per unit.
	f := NewMinCostFlow(3)
	f.AddEdge(0, 1, 3, 1)
	f.AddEdge(1, 2, 3, 2)
	flow, cost := f.Run(0, 2, 10)
	if flow != 3 || math.Abs(cost-9) > 1e-9 {
		t.Errorf("flow=%d cost=%v, want 3, 9", flow, cost)
	}
}

func TestMinCostFlowPrefersCheapPath(t *testing.T) {
	// Two parallel paths; cheap one has capacity 1.
	f := NewMinCostFlow(4)
	f.AddEdge(0, 1, 1, 0)
	f.AddEdge(1, 3, 1, 1) // cheap: total 1/unit
	f.AddEdge(0, 2, 5, 0)
	f.AddEdge(2, 3, 5, 4) // expensive: 4/unit
	flow, cost := f.Run(0, 3, 3)
	if flow != 3 {
		t.Fatalf("flow = %d", flow)
	}
	if math.Abs(cost-(1+2*4)) > 1e-9 {
		t.Errorf("cost = %v, want 9", cost)
	}
}

func TestMinCostFlowUsesResidualEdges(t *testing.T) {
	// Classic rerouting instance: optimal flow of 2 requires pushing back
	// over the middle edge.
	f := NewMinCostFlow(4)
	f.AddEdge(0, 1, 1, 1)
	f.AddEdge(0, 2, 1, 10)
	f.AddEdge(1, 2, 1, -8) // negative shortcut
	f.AddEdge(1, 3, 1, 10)
	f.AddEdge(2, 3, 1, 1)
	flow, cost := f.Run(0, 3, 2)
	if flow != 2 {
		t.Fatalf("flow = %d", flow)
	}
	// Paths: 0→1→2→3 (1−8+1=−6) then 0→2 reroutes? Optimal total:
	// 0→1→2→3 = −6 and 0→2... cap(0→2)=1, but 2→3 is saturated; residual
	// 2→1 reopens: 0→2→1→3 = 10+8+10 = 28. Total 22.
	if math.Abs(cost-22) > 1e-9 {
		t.Errorf("cost = %v, want 22", cost)
	}
}

func TestMinCostFlowDisconnected(t *testing.T) {
	f := NewMinCostFlow(2)
	flow, cost := f.Run(0, 1, 5)
	if flow != 0 || cost != 0 {
		t.Errorf("flow=%d cost=%v on empty graph", flow, cost)
	}
}

func TestAssignViaFlowValidAssignment(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := AssignViaFlow(cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-5) > 1e-9 {
		t.Errorf("total = %v, want 5", total)
	}
	seen := map[int]bool{}
	var check float64
	for i, j := range assign {
		if j == NoWorker || seen[j] {
			t.Fatalf("invalid assignment %v", assign)
		}
		seen[j] = true
		check += cost[i][j]
	}
	if math.Abs(check-total) > 1e-9 {
		t.Errorf("assignment cost %v ≠ total %v", check, total)
	}
}

func TestAssignViaFlowErrors(t *testing.T) {
	if _, _, err := AssignViaFlow([][]float64{{1}, {2}}); err == nil {
		t.Error("rows > cols accepted")
	}
	if _, _, err := AssignViaFlow([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged accepted")
	}
	if a, total, err := AssignViaFlow(nil); err != nil || a != nil || total != 0 {
		t.Error("empty mishandled")
	}
}
