package match

import (
	"github.com/pombm/pombm/internal/geo"
)

// EuclideanGreedyIndexed matches exactly like EuclideanGreedy — nearest
// unassigned worker by reported Euclidean distance, ties to the lowest
// worker index — but answers each task through a bucketed dynamic
// nearest-neighbour index instead of an O(n) scan. It is the Euclidean
// counterpart of the HST trie matcher and exists for the same ablation:
// the paper's complexity story uses the scans, the indexes show the
// achievable speedups.
type EuclideanGreedyIndexed struct {
	workers   []geo.Point
	index     *geo.DynamicNN
	remaining int
}

// NewEuclideanGreedyIndexed builds the matcher over reported worker
// locations inside the given region (reports may fall outside; they are
// bucketed at the boundary but keep their true coordinates).
func NewEuclideanGreedyIndexed(region geo.Rect, workers []geo.Point) (*EuclideanGreedyIndexed, error) {
	idx, err := geo.NewDynamicNN(region, len(workers))
	if err != nil {
		return nil, err
	}
	for i, w := range workers {
		idx.Insert(i, w)
	}
	return &EuclideanGreedyIndexed{
		workers:   workers,
		index:     idx,
		remaining: len(workers),
	}, nil
}

// Remaining returns the number of unassigned workers.
func (g *EuclideanGreedyIndexed) Remaining() int { return g.remaining }

// Assign matches the task to the nearest unassigned worker and consumes it.
func (g *EuclideanGreedyIndexed) Assign(t geo.Point) int {
	id, p, ok := g.index.Nearest(t)
	if !ok {
		return NoWorker
	}
	g.index.Remove(id, p)
	g.remaining--
	return id
}
