package match

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when a cost matrix has more rows than columns.
var ErrShape = errors.New("match: cost matrix needs rows ≤ columns")

// checkFinite rejects NaN and ±Inf cost entries: the Hungarian potential
// updates and the flow solver's shortest-path search both propagate
// non-finite values silently into nonsense assignments, so the matchers
// refuse them up front.
func checkFinite(cost [][]float64) error {
	for i := range cost {
		for j, c := range cost[i] {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("match: non-finite cost %v at [%d][%d]", c, i, j)
			}
		}
	}
	return nil
}

// Hungarian solves the rectangular assignment problem: given cost[i][j] for
// assigning row i (task) to column j (worker), with rows ≤ columns, it
// returns the column assigned to each row and the minimum total cost. It
// runs the O(n²·m) potential-based Kuhn–Munkres algorithm.
//
// The experiments use it to compute MOPT, the offline optimal matching on
// true locations, against which empirical competitive ratios are measured.
// Cost entries must be finite: NaN or ±Inf costs are rejected with an error
// rather than corrupting the potentials.
func Hungarian(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, ErrShape
	}
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, errors.New("match: ragged cost matrix")
		}
	}
	if err := checkFinite(cost); err != nil {
		return nil, 0, err
	}

	inf := math.Inf(1)
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j]: row matched to column j (1-based, 0 = free)
	way := make([]int, m+1) // alternating-path parents
	minv := make([]float64, m+1)
	used := make([]bool, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign := make([]int, n)
	var total float64
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return assign, total, nil
}

// Optimal computes the minimum total cost of a matching that saturates the
// smaller of the two sides, with dist(t, w) supplying pairwise costs. It
// returns the worker assigned to each task (NoWorker for tasks left
// unmatched when tasks outnumber workers) and the total cost. This is MOPT
// in the competitive-ratio experiments; pass true Euclidean distances for
// the paper's d(MOPT) or tree distances for tree-space optima.
func Optimal(nTasks, nWorkers int, dist func(task, worker int) float64) ([]int, float64, error) {
	if nTasks == 0 || nWorkers == 0 {
		out := make([]int, nTasks)
		for i := range out {
			out[i] = NoWorker
		}
		return out, 0, nil
	}
	if nTasks <= nWorkers {
		cost := make([][]float64, nTasks)
		for i := range cost {
			cost[i] = make([]float64, nWorkers)
			for j := range cost[i] {
				cost[i][j] = dist(i, j)
			}
		}
		return Hungarian(cost)
	}
	// More tasks than workers: match every worker, transpose.
	cost := make([][]float64, nWorkers)
	for j := range cost {
		cost[j] = make([]float64, nTasks)
		for i := range cost[j] {
			cost[j][i] = dist(i, j)
		}
	}
	byWorker, total, err := Hungarian(cost)
	if err != nil {
		return nil, 0, err
	}
	out := make([]int, nTasks)
	for i := range out {
		out[i] = NoWorker
	}
	for w, t := range byWorker {
		out[t] = w
	}
	return out, total, nil
}
