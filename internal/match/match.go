// Package match implements the task-assignment algorithms of the POMBM
// evaluation: the Euclidean greedy of Lap-GR, the HST-Greedy of Alg. 4 (in
// the paper's O(n)-scan form and an O(D) trie-indexed form), offline optimal
// matching (Hungarian algorithm and min-cost max-flow) for competitive-ratio
// measurements, and the matching-size maximisation matchers of the Sec. IV-C
// case study (TBF-size and the Prob baseline).
//
// Matchers are online: they are constructed over the worker set and fed
// tasks one at a time, mirroring the interaction model where tasks appear
// dynamically and must be assigned immediately.
package match

import (
	"math"

	"github.com/pombm/pombm/internal/geo"
)

// NoWorker is returned by Assign methods when no worker can be assigned.
const NoWorker = -1

// EuclideanGreedy assigns each arriving task to the unassigned worker
// nearest in Euclidean distance between the *reported* (obfuscated)
// locations. This is the greedy algorithm of Tong et al. (PVLDB'16) run on
// permuted data — the matcher inside the Lap-GR baseline. O(n) per task.
type EuclideanGreedy struct {
	workers   []geo.Point
	used      []bool
	remaining int
}

// NewEuclideanGreedy returns a matcher over the reported worker locations.
func NewEuclideanGreedy(workers []geo.Point) *EuclideanGreedy {
	return &EuclideanGreedy{
		workers:   workers,
		used:      make([]bool, len(workers)),
		remaining: len(workers),
	}
}

// Remaining returns the number of unassigned workers.
func (g *EuclideanGreedy) Remaining() int { return g.remaining }

// Assign matches the task at reported location t to the nearest unassigned
// worker and consumes that worker. It returns NoWorker when all workers are
// assigned. Ties are broken towards the lowest worker index.
func (g *EuclideanGreedy) Assign(t geo.Point) int {
	if g.remaining == 0 {
		return NoWorker
	}
	best, bestD := NoWorker, math.Inf(1)
	for i, w := range g.workers {
		if g.used[i] {
			continue
		}
		if d := t.Dist2(w); d < bestD {
			best, bestD = i, d
		}
	}
	g.used[best] = true
	g.remaining--
	return best
}
