package match

import (
	"math"
	"testing"
)

// TestNonFiniteCostsRejected pins the hardening contract: NaN and ±Inf
// entries anywhere in the cost matrix make Hungarian, AssignViaFlow,
// Optimal, and OptimalCapacitated return an explicit error instead of a
// silent bad assignment.
func TestNonFiniteCostsRejected(t *testing.T) {
	bads := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, bad := range bads {
		cost := [][]float64{
			{1, 2, 3},
			{4, bad, 6},
		}
		if _, _, err := Hungarian(cost); err == nil {
			t.Errorf("Hungarian accepted cost %v", bad)
		}
		if _, _, err := AssignViaFlow(cost); err == nil {
			t.Errorf("AssignViaFlow accepted cost %v", bad)
		}
		dist := func(i, j int) float64 { return cost[i][j] }
		if _, _, err := Optimal(2, 3, dist); err == nil {
			t.Errorf("Optimal accepted cost %v", bad)
		}
		if _, _, err := OptimalCapacitated(2, []int{1, 1, 1}, dist); err == nil {
			t.Errorf("OptimalCapacitated accepted cost %v", bad)
		}
	}
}

// TestOptimalTransposedNonFinite covers the tasks > workers transpose path.
func TestOptimalTransposedNonFinite(t *testing.T) {
	dist := func(i, j int) float64 {
		if i == 2 && j == 0 {
			return math.Inf(1)
		}
		return float64(i + j)
	}
	if _, _, err := Optimal(3, 2, dist); err == nil {
		t.Error("Optimal (transposed) accepted an infinite cost")
	}
}

// TestFiniteCostsStillSolve guards against over-eager rejection: ordinary
// finite matrices keep solving exactly as before.
func TestFiniteCostsStillSolve(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 { // rows take columns 1 and 0 (1 + 2)
		t.Errorf("Hungarian total = %v, want 3", total)
	}
	if assign[0] == assign[1] {
		t.Errorf("Hungarian reused a column: %v", assign)
	}
	if _, ftotal, err := AssignViaFlow(cost); err != nil || ftotal != total {
		t.Errorf("AssignViaFlow = (%v, %v), want total %v", ftotal, err, total)
	}
}
