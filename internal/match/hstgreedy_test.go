package match

import (
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

func buildTree(t testing.TB, src *rng.Source, n int, side float64) *hst.Tree {
	t.Helper()
	pts := make([]geo.Point, 0, n)
	seen := map[geo.Point]bool{}
	for len(pts) < n {
		p := geo.Pt(src.Uniform(0, side), src.Uniform(0, side))
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	tr, err := hst.Build(pts, src.Derive("tree"))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestHSTGreedyScanPrefersCloserWorkers(t *testing.T) {
	// Build the paper's Example 1 tree and check tree-nearest selection.
	pts := []geo.Point{geo.Pt(1, 1), geo.Pt(2, 3), geo.Pt(5, 3), geo.Pt(4, 4)}
	tr, err := hst.BuildWithParams(pts, 0.5, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Workers at o2 and o3; task at o4: o3 is tree-closer (LCA level 2)
	// than o2 (level 4).
	g := NewHSTGreedyScan(tr, []hst.Code{tr.CodeOf(1), tr.CodeOf(2)})
	if got := g.Assign(tr.CodeOf(3)); got != 1 {
		t.Errorf("task at o4 → worker %d, want 1 (o3)", got)
	}
	// Next task at o4 must take the remaining worker.
	if got := g.Assign(tr.CodeOf(3)); got != 0 {
		t.Errorf("second task → worker %d, want 0", got)
	}
	if got := g.Assign(tr.CodeOf(3)); got != NoWorker {
		t.Errorf("exhausted scan returned %d", got)
	}
}

// TestScanAndTrieEquivalent feeds identical task streams to both HST-Greedy
// implementations. Both resolve distance ties towards the lowest worker id,
// so they must agree assignment-for-assignment, not just in total distance.
func TestScanAndTrieEquivalent(t *testing.T) {
	src := rng.New(123)
	for trial := 0; trial < 10; trial++ {
		s := src.DeriveN("trial", trial)
		tr := buildTree(t, s, 30+s.Intn(60), 200)
		nw := 20 + s.Intn(80)
		workers := make([]hst.Code, nw)
		for i := range workers {
			workers[i] = tr.CodeOf(s.Intn(tr.NumPoints()))
		}
		scan := NewHSTGreedyScan(tr, workers)
		trie, err := NewHSTGreedyTrie(tr, workers)
		if err != nil {
			t.Fatal(err)
		}
		nt := nw + 10 // run past exhaustion
		for k := 0; k < nt; k++ {
			task := tr.CodeOf(s.Intn(tr.NumPoints()))
			ws := scan.Assign(task)
			wt := trie.Assign(task)
			if ws != wt {
				t.Fatalf("trial %d task %d: scan=%d trie=%d", trial, k, ws, wt)
			}
		}
		if scan.Remaining() != trie.Remaining() {
			t.Fatalf("trial %d: remaining differ", trial)
		}
	}
}

func TestHSTGreedyTrieRejectsBadCodes(t *testing.T) {
	src := rng.New(5)
	tr := buildTree(t, src, 10, 50)
	if _, err := NewHSTGreedyTrie(tr, []hst.Code{"x"}); err == nil {
		t.Error("bad worker code accepted")
	}
}

func TestHSTGreedyEmpty(t *testing.T) {
	src := rng.New(6)
	tr := buildTree(t, src, 10, 50)
	scan := NewHSTGreedyScan(tr, nil)
	if got := scan.Assign(tr.CodeOf(0)); got != NoWorker {
		t.Errorf("empty scan returned %d", got)
	}
	trie, err := NewHSTGreedyTrie(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := trie.Assign(tr.CodeOf(0)); got != NoWorker {
		t.Errorf("empty trie returned %d", got)
	}
}

func BenchmarkHSTGreedyScan(b *testing.B) {
	benchHSTGreedy(b, func(tr *hst.Tree, ws []hst.Code) interface{ Assign(hst.Code) int } {
		return NewHSTGreedyScan(tr, ws)
	})
}

func BenchmarkHSTGreedyTrie(b *testing.B) {
	benchHSTGreedy(b, func(tr *hst.Tree, ws []hst.Code) interface{ Assign(hst.Code) int } {
		g, err := NewHSTGreedyTrie(tr, ws)
		if err != nil {
			b.Fatal(err)
		}
		return g
	})
}

func benchHSTGreedy(b *testing.B, mk func(*hst.Tree, []hst.Code) interface{ Assign(hst.Code) int }) {
	src := rng.New(777)
	tr := buildTree(b, src, 500, 200)
	const nw = 4000
	workers := make([]hst.Code, nw)
	for i := range workers {
		workers[i] = tr.CodeOf(src.Intn(tr.NumPoints()))
	}
	tasks := make([]hst.Code, 1024)
	for i := range tasks {
		tasks[i] = tr.CodeOf(src.Intn(tr.NumPoints()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%nw == 0 { // refill workers when exhausted
			b.StopTimer()
			g := mk(tr, workers)
			b.StartTimer()
			benchSink = g
		}
		benchSink.(interface{ Assign(hst.Code) int }).Assign(tasks[i%len(tasks)])
	}
}

var benchSink any
