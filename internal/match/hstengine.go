package match

import (
	"github.com/pombm/pombm/internal/engine"
	"github.com/pombm/pombm/internal/hst"
)

// HSTGreedyEngine answers Alg. 4 through the sharded concurrent engine:
// the same O(D) per-task work as HSTGreedyTrie, but safe for concurrent
// Assign calls and free of the single-lock bottleneck — the matcher to use
// when tasks arrive on many goroutines. Ties are broken towards the lowest
// worker id, so driven sequentially it is assignment-for-assignment
// identical to HSTGreedyScan.
type HSTGreedyEngine struct {
	eng *engine.Engine
}

// NewHSTGreedyEngine returns the engine-backed matcher over the reported
// worker leaf codes. shards ≤ 0 selects the engine default.
func NewHSTGreedyEngine(tree *hst.Tree, workers []hst.Code, shards int) (*HSTGreedyEngine, error) {
	eng, err := engine.New(tree, shards)
	if err != nil {
		return nil, err
	}
	for i, c := range workers {
		if err := eng.Insert(c, i); err != nil {
			return nil, err
		}
	}
	return &HSTGreedyEngine{eng: eng}, nil
}

// Engine exposes the underlying assignment engine.
func (g *HSTGreedyEngine) Engine() *engine.Engine { return g.eng }

// Remaining returns the number of unassigned workers.
func (g *HSTGreedyEngine) Remaining() int { return g.eng.Len() }

// Assign matches the task with obfuscated leaf t to a tree-nearest
// unassigned worker and consumes it. Returns NoWorker when exhausted.
func (g *HSTGreedyEngine) Assign(t hst.Code) int {
	id, _, ok := g.eng.Assign(t)
	if !ok {
		return NoWorker
	}
	return id
}

// AssignBatch assigns a batch of tasks in order, amortising shard locking.
// Each entry is the assigned worker or NoWorker.
func (g *HSTGreedyEngine) AssignBatch(ts []hst.Code) []int {
	out, _ := g.eng.AssignBatch(ts)
	for i, id := range out {
		if id == engine.None {
			out[i] = NoWorker
		}
	}
	return out
}
