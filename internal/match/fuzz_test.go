package match

import (
	"math"
	"testing"
)

// FuzzHungarian decodes small cost matrices from fuzz bytes and checks the
// Hungarian result against the flow solver and against validity bounds.
func FuzzHungarian(f *testing.F) {
	f.Add([]byte{2, 3, 10, 20, 30, 40, 50, 60})
	f.Add([]byte{1, 1, 7})
	f.Add([]byte{3, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := int(data[0]%4) + 1
		m := n + int(data[1]%3)
		need := n * m
		if len(data)-2 < need {
			return
		}
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = float64(data[2+i*m+j]) / 4
			}
		}
		assign, total, err := Hungarian(cost)
		if err != nil {
			t.Fatalf("Hungarian: %v", err)
		}
		// Valid injective assignment consistent with the total.
		seen := map[int]bool{}
		var check float64
		for i, j := range assign {
			if j < 0 || j >= m || seen[j] {
				t.Fatalf("invalid assignment %v", assign)
			}
			seen[j] = true
			check += cost[i][j]
		}
		if math.Abs(check-total) > 1e-9 {
			t.Fatalf("total %v vs recomputed %v", total, check)
		}
		// Agreement with the independent flow solver.
		_, flowTotal, err := AssignViaFlow(cost)
		if err != nil {
			t.Fatalf("flow: %v", err)
		}
		if math.Abs(total-flowTotal) > 1e-6 {
			t.Fatalf("Hungarian %v ≠ flow %v", total, flowTotal)
		}
		// No better greedy row-by-row assignment (optimality lower bound
		// check: optimal ≤ greedy).
		used := make([]bool, m)
		var greedy float64
		for i := 0; i < n; i++ {
			best, bestC := -1, math.Inf(1)
			for j := 0; j < m; j++ {
				if !used[j] && cost[i][j] < bestC {
					best, bestC = j, cost[i][j]
				}
			}
			used[best] = true
			greedy += bestC
		}
		if total > greedy+1e-9 {
			t.Fatalf("optimal %v exceeds greedy %v", total, greedy)
		}
	})
}
