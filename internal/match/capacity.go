package match

import (
	"errors"
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/hst"
)

// Capacity-constrained matching: each worker may serve up to capacity[i]
// tasks before being exhausted. This models multi-task workers (couriers
// batching orders — the "multi-worker-aware planning" setting the paper's
// introduction cites) and generalises the one-shot matchers, which are the
// capacity-1 special case.

// HSTGreedyCapacitated assigns each arriving task to a tree-nearest worker
// with remaining capacity, through the leaf-code trie (O(D) per task).
type HSTGreedyCapacitated struct {
	tree      *hst.Tree
	codes     []hst.Code
	left      []int
	index     *hst.LeafIndex
	remaining int // total remaining capacity
}

// NewHSTGreedyCapacitated builds the matcher; capacity[i] is worker i's
// task budget (must be non-negative).
func NewHSTGreedyCapacitated(tree *hst.Tree, workers []hst.Code, capacity []int) (*HSTGreedyCapacitated, error) {
	if len(capacity) != len(workers) {
		return nil, fmt.Errorf("match: %d capacities for %d workers", len(capacity), len(workers))
	}
	idx := hst.NewLeafIndexDegree(tree.Depth(), tree.Degree())
	total := 0
	for i, c := range workers {
		if capacity[i] < 0 {
			return nil, errors.New("match: negative capacity")
		}
		if capacity[i] > 0 {
			if err := idx.Insert(c, i); err != nil {
				return nil, err
			}
			total += capacity[i]
		}
	}
	return &HSTGreedyCapacitated{
		tree:      tree,
		codes:     workers,
		left:      append([]int(nil), capacity...),
		index:     idx,
		remaining: total,
	}, nil
}

// Remaining returns the total remaining capacity across workers.
func (g *HSTGreedyCapacitated) Remaining() int { return g.remaining }

// Assign matches the task to a tree-nearest worker with spare capacity,
// consuming one unit. Returns NoWorker when all capacity is spent.
func (g *HSTGreedyCapacitated) Assign(t hst.Code) int {
	id, _, ok := g.index.Nearest(t)
	if !ok {
		return NoWorker
	}
	g.left[id]--
	g.remaining--
	if g.left[id] == 0 {
		g.index.Remove(g.codes[id], id)
	}
	return id
}

// OptimalCapacitated computes the offline minimum-cost assignment of all
// tasks to workers subject to capacities, via min-cost max-flow. It errors
// when total capacity cannot cover the tasks.
func OptimalCapacitated(nTasks int, capacity []int, dist func(task, worker int) float64) ([]int, float64, error) {
	nWorkers := len(capacity)
	total := 0
	for _, c := range capacity {
		if c < 0 {
			return nil, 0, errors.New("match: negative capacity")
		}
		total += c
	}
	if total < nTasks {
		return nil, 0, fmt.Errorf("match: capacity %d cannot cover %d tasks", total, nTasks)
	}
	if nTasks == 0 {
		return nil, 0, nil
	}
	// Nodes: 0 source, 1..nTasks tasks, nTasks+1..nTasks+nWorkers workers, sink.
	src, sink := 0, nTasks+nWorkers+1
	f := NewMinCostFlow(nTasks + nWorkers + 2)
	for i := 0; i < nTasks; i++ {
		if _, err := f.AddEdge(src, 1+i, 1, 0); err != nil {
			return nil, 0, err
		}
	}
	base := f.NumEdges()
	for i := 0; i < nTasks; i++ {
		for j := 0; j < nWorkers; j++ {
			d := dist(i, j)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, 0, fmt.Errorf("match: non-finite cost %v for task %d, worker %d", d, i, j)
			}
			if _, err := f.AddEdge(1+i, 1+nTasks+j, 1, d); err != nil {
				return nil, 0, err
			}
		}
	}
	for j := 0; j < nWorkers; j++ {
		if _, err := f.AddEdge(1+nTasks+j, sink, capacity[j], 0); err != nil {
			return nil, 0, err
		}
	}
	flow, cost := f.Run(src, sink, nTasks)
	if flow < nTasks {
		return nil, 0, errors.New("match: flow could not cover all tasks")
	}
	assign := make([]int, nTasks)
	for i := 0; i < nTasks; i++ {
		assign[i] = NoWorker
		for j := 0; j < nWorkers; j++ {
			e := base + 2*(i*nWorkers+j)
			if f.Residual(e) == 0 {
				assign[i] = j
				break
			}
		}
	}
	return assign, cost, nil
}
