package match

import (
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

func TestEuclideanGreedyIndexedMatchesScan(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200))
	src := rng.New(2024)
	for trial := 0; trial < 10; trial++ {
		s := src.DeriveN("t", trial)
		nw := 30 + s.Intn(300)
		workers := make([]geo.Point, nw)
		for i := range workers {
			// Include out-of-region reports, as Laplace noise produces.
			workers[i] = geo.Pt(s.Uniform(-20, 220), s.Uniform(-20, 220))
		}
		scan := NewEuclideanGreedy(workers)
		indexed, err := NewEuclideanGreedyIndexed(region, workers)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < nw+10; k++ {
			task := geo.Pt(s.Uniform(0, 200), s.Uniform(0, 200))
			ws := scan.Assign(task)
			wi := indexed.Assign(task)
			if ws != wi {
				t.Fatalf("trial %d task %d: scan %d, indexed %d", trial, k, ws, wi)
			}
		}
		if scan.Remaining() != indexed.Remaining() {
			t.Fatalf("trial %d: remaining differ", trial)
		}
	}
}

func TestEuclideanGreedyIndexedEmpty(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	g, err := NewEuclideanGreedyIndexed(region, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Assign(geo.Pt(1, 1)); got != NoWorker {
		t.Errorf("empty index assigned %d", got)
	}
}

func BenchmarkEuclideanGreedyScan(b *testing.B) {
	benchEuclideanGreedy(b, false)
}

func BenchmarkEuclideanGreedyIndexed(b *testing.B) {
	benchEuclideanGreedy(b, true)
}

func benchEuclideanGreedy(b *testing.B, indexed bool) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200))
	src := rng.New(9)
	const nw = 4000
	workers := make([]geo.Point, nw)
	for i := range workers {
		workers[i] = geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))
	}
	tasks := make([]geo.Point, 1024)
	for i := range tasks {
		tasks[i] = geo.Pt(src.Uniform(0, 200), src.Uniform(0, 200))
	}
	var assign func(geo.Point) int
	reset := func() {
		if indexed {
			g, err := NewEuclideanGreedyIndexed(region, workers)
			if err != nil {
				b.Fatal(err)
			}
			assign = g.Assign
		} else {
			assign = NewEuclideanGreedy(workers).Assign
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%nw == 0 {
			b.StopTimer()
			reset()
			b.StartTimer()
		}
		assign(tasks[i%len(tasks)])
	}
}
