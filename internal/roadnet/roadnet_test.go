package roadnet

import (
	"math"
	"testing"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/hst"
	"github.com/pombm/pombm/internal/rng"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geo.Pt(0, 0))
	b := g.AddNode(geo.Pt(1, 0))
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if err := g.AddEdge(a, b, 5); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if err := g.AddEdge(a, a, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(a, 9, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(a, b, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.AddEdge(a, b, math.Inf(1)); err == nil {
		t.Error("infinite weight accepted")
	}
}

func TestDijkstraKnownGraph(t *testing.T) {
	//     1
	//  0 --- 1
	//  |      \ 2
	//  4       2
	//  |      /
	//  3 --- 1
	g := NewGraph()
	for i := 0; i < 4; i++ {
		g.AddNode(geo.Pt(float64(i), 0))
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 3, 4)
	g.AddEdge(3, 2, 1)
	dist := g.ShortestPaths(0)
	want := []float64{0, 1, 3, 4}
	for i, w := range want {
		if math.Abs(dist[i]-w) > 1e-12 {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	src := rng.New(17)
	for trial := 0; trial < 20; trial++ {
		s := src.DeriveN("t", trial)
		n := 2 + s.Intn(30)
		g := NewGraph()
		for i := 0; i < n; i++ {
			g.AddNode(geo.Pt(s.Uniform(0, 10), s.Uniform(0, 10)))
		}
		type edge struct {
			u, v int
			w    float64
		}
		var edges []edge
		for i := 0; i < n*3; i++ {
			u, v := s.Intn(n), s.Intn(n)
			if u == v {
				continue
			}
			w := s.Uniform(0.1, 10)
			if err := g.AddEdge(u, v, w); err != nil {
				t.Fatal(err)
			}
			edges = append(edges, edge{u, v, w})
		}
		got := g.ShortestPaths(0)
		// Bellman-Ford reference.
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = math.Inf(1)
		}
		ref[0] = 0
		for iter := 0; iter < n; iter++ {
			for _, e := range edges {
				if ref[e.u]+e.w < ref[e.v] {
					ref[e.v] = ref[e.u] + e.w
				}
				if ref[e.v]+e.w < ref[e.u] {
					ref[e.u] = ref[e.v] + e.w
				}
			}
		}
		for i := range ref {
			if math.IsInf(ref[i], 1) != math.IsInf(got[i], 1) {
				t.Fatalf("trial %d node %d: reachability mismatch", trial, i)
			}
			if !math.IsInf(ref[i], 1) && math.Abs(ref[i]-got[i]) > 1e-9 {
				t.Fatalf("trial %d node %d: dijkstra %v, bellman-ford %v", trial, i, got[i], ref[i])
			}
		}
	}
}

func TestManhattanGeneratorProperties(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200))
	src := rng.New(5)
	g, err := Manhattan(region, 12, 12, 0.5, 0.15, src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 144 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	full := 2 * 12 * 11
	if g.NumEdges() >= full || g.NumEdges() < full/2 {
		t.Errorf("edges = %d, want blocked fraction of %d", g.NumEdges(), full)
	}
	// Connected: every node reachable from node 0.
	dist := g.ShortestPaths(0)
	for i, d := range dist {
		if math.IsInf(d, 1) {
			t.Fatalf("node %d unreachable", i)
		}
	}
	// Network distance dominates Euclidean distance (congestion ≥ 1 and
	// paths are at least as long as straight lines).
	for i := 0; i < g.NumNodes(); i += 13 {
		if dist[i]+1e-9 < g.Node(0).Dist(g.Node(i)) {
			t.Fatalf("network distance to %d shorter than Euclidean", i)
		}
	}
}

func TestManhattanValidation(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	src := rng.New(1)
	if _, err := Manhattan(region, 1, 5, 0, 0, src); err == nil {
		t.Error("1-column grid accepted")
	}
	if _, err := Manhattan(region, 4, 4, -1, 0, src); err == nil {
		t.Error("negative congestion accepted")
	}
	if _, err := Manhattan(region, 4, 4, 0, 1, src); err == nil {
		t.Error("blockFrac=1 accepted")
	}
}

func TestMetricAmongIsAMetric(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	src := rng.New(9)
	g, err := Manhattan(region, 8, 8, 0.3, 0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int, g.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	m, err := g.MetricAmong(nodes)
	if err != nil {
		t.Fatal(err)
	}
	n := m.Len()
	for i := 0; i < n; i += 5 {
		if m.Dist(i, i) != 0 {
			t.Fatalf("d(%d,%d) = %v", i, i, m.Dist(i, i))
		}
		for j := 0; j < n; j += 7 {
			if math.Abs(m.Dist(i, j)-m.Dist(j, i)) > 1e-9 {
				t.Fatalf("asymmetric: d(%d,%d) ≠ d(%d,%d)", i, j, j, i)
			}
			for k := 0; k < n; k += 11 {
				if m.Dist(i, k) > m.Dist(i, j)+m.Dist(j, k)+1e-9 {
					t.Fatalf("triangle violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestMetricAmongDisconnected(t *testing.T) {
	g := NewGraph()
	g.AddNode(geo.Pt(0, 0))
	g.AddNode(geo.Pt(1, 0))
	if _, err := g.MetricAmong([]int{0, 1}); err == nil {
		t.Error("disconnected metric accepted")
	}
	if _, err := g.MetricAmong([]int{0, 5}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

// TestHSTOverRoadMetric builds an HST on network distances and checks the
// FRT non-contraction guarantee holds in the road metric.
func TestHSTOverRoadMetric(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200))
	src := rng.New(21)
	g, err := Manhattan(region, 10, 10, 0.4, 0.1, src)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]int, g.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	m, err := g.MetricAmong(nodes)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := hst.BuildMetric(m.Len(), m.Dist, src.Derive("tree"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Len(); i += 3 {
		for j := i + 1; j < m.Len(); j += 7 {
			road := m.Dist(i, j) * tr.Scale()
			if dt := tr.Dist(tr.CodeOf(i), tr.CodeOf(j)); dt < road-1e-9 {
				t.Fatalf("tree contracted road metric at (%d,%d): %v < %v", i, j, dt, road)
			}
		}
	}
}
