// Package roadnet provides road-network metrics for spatial crowdsourcing:
// weighted undirected graphs with Dijkstra shortest paths, a Manhattan-style
// grid-network generator, and dense metric tables suitable for building
// HSTs over network distance instead of Euclidean distance.
//
// The paper formulates POMBM in a generic metric space X; its evaluation
// uses the plane, but real dispatching distances follow streets. Because
// Alg. 1 consumes only pairwise distances, the tree-based framework lifts
// to road networks unchanged — the abl-road experiment quantifies the
// difference.
package roadnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"github.com/pombm/pombm/internal/geo"
	"github.com/pombm/pombm/internal/rng"
)

// Graph is a weighted undirected graph with geometric node positions.
type Graph struct {
	nodes []geo.Point
	adj   [][]halfEdge
}

type halfEdge struct {
	to int
	w  float64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a node at position p and returns its id.
func (g *Graph) AddNode(p geo.Point) int {
	g.nodes = append(g.nodes, p)
	g.adj = append(g.adj, nil)
	return len(g.nodes) - 1
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Node returns the position of node id.
func (g *Graph) Node(id int) geo.Point { return g.nodes[id] }

// Positions returns all node positions; callers must not modify the slice.
func (g *Graph) Positions() []geo.Point { return g.nodes }

// AddEdge adds an undirected edge of the given positive length.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= len(g.nodes) || v < 0 || v >= len(g.nodes) {
		return fmt.Errorf("roadnet: edge (%d,%d) outside node range", u, v)
	}
	if u == v {
		return errors.New("roadnet: self loops not allowed")
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("roadnet: edge weight %v must be positive and finite", w)
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, w: w})
	return nil
}

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// ShortestPaths runs Dijkstra from src and returns the distance to every
// node (+Inf for unreachable ones).
func (g *Graph) ShortestPaths(src int) []float64 {
	dist := make([]float64, len(g.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if src < 0 || src >= len(g.nodes) {
		return dist
	}
	dist[src] = 0
	pq := &distHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.node] {
			continue // stale entry
		}
		for _, e := range g.adj[top.node] {
			if nd := top.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distEntry{node: e.to, d: nd})
			}
		}
	}
	return dist
}

// distHeap is a binary min-heap of (node, distance) entries.
type distEntry struct {
	node int
	d    float64
}

type distHeap []distEntry

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Metric is a dense all-pairs shortest-path table over a node subset,
// ready to feed hst.BuildMetric.
type Metric struct {
	ids []int
	d   [][]float64
}

// MetricAmong computes network distances between the given nodes by one
// Dijkstra per node. It errors when any pair is disconnected (an HST needs
// a finite metric).
func (g *Graph) MetricAmong(nodes []int) (*Metric, error) {
	m := &Metric{ids: append([]int(nil), nodes...), d: make([][]float64, len(nodes))}
	for _, id := range nodes {
		if id < 0 || id >= len(g.nodes) {
			return nil, fmt.Errorf("roadnet: node %d outside range", id)
		}
	}
	for i, id := range nodes {
		all := g.ShortestPaths(id)
		row := make([]float64, len(nodes))
		for j, jd := range nodes {
			row[j] = all[jd]
			if math.IsInf(row[j], 1) {
				return nil, fmt.Errorf("roadnet: nodes %d and %d are disconnected", id, jd)
			}
		}
		m.d[i] = row
	}
	return m, nil
}

// Len returns the number of points in the metric.
func (m *Metric) Len() int { return len(m.ids) }

// NodeID maps a metric index back to the underlying graph node.
func (m *Metric) NodeID(i int) int { return m.ids[i] }

// Dist returns the network distance between metric indexes i and j.
func (m *Metric) Dist(i, j int) float64 { return m.d[i][j] }

// Manhattan generates a cols × rows grid road network over region:
// intersections at grid points, street segments between 4-neighbours with
// lengths equal to the Euclidean spacing scaled by a per-segment congestion
// factor drawn from [1, 1+congestion], and a fraction of segments removed
// (blocked streets) while keeping the network connected.
func Manhattan(region geo.Rect, cols, rows int, congestion, blockFrac float64, src *rng.Source) (*Graph, error) {
	if cols < 2 || rows < 2 {
		return nil, fmt.Errorf("roadnet: grid %dx%d too small", cols, rows)
	}
	if congestion < 0 || blockFrac < 0 || blockFrac >= 1 {
		return nil, fmt.Errorf("roadnet: bad congestion %v or blockFrac %v", congestion, blockFrac)
	}
	grid, err := geo.NewGrid(region, cols, rows)
	if err != nil {
		return nil, err
	}
	g := NewGraph()
	for i := 0; i < grid.Len(); i++ {
		g.AddNode(grid.Point(i))
	}
	type seg struct{ u, v int }
	var segs []seg
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols {
				segs = append(segs, seg{id, id + 1})
			}
			if r+1 < rows {
				segs = append(segs, seg{id, id + cols})
			}
		}
	}
	// Block a sample of segments, but never disconnect: a segment is only
	// removable if both endpoints keep degree ≥ 2 afterwards (cheap local
	// criterion that preserves connectivity on grid graphs' outer face
	// except in adversarial cascades, which we re-check globally below).
	blocked := make(map[seg]bool)
	target := int(blockFrac * float64(len(segs)))
	degree := make([]int, g.NumNodes())
	for _, s := range segs {
		degree[s.u]++
		degree[s.v]++
	}
	order := make([]int, len(segs))
	for i := range order {
		order[i] = i
	}
	rng.PermInPlace(src.Derive("blocks"), order)
	for _, i := range order {
		if len(blocked) >= target {
			break
		}
		s := segs[i]
		if degree[s.u] <= 2 || degree[s.v] <= 2 {
			continue
		}
		blocked[s] = true
		degree[s.u]--
		degree[s.v]--
	}
	wSrc := src.Derive("weights")
	for _, s := range segs {
		if blocked[s] {
			continue
		}
		base := g.Node(s.u).Dist(g.Node(s.v))
		factor := 1 + wSrc.Float64()*congestion
		if err := g.AddEdge(s.u, s.v, base*factor); err != nil {
			return nil, err
		}
	}
	// Global connectivity check; degree heuristics cannot fail on grids
	// with blockFrac < 1, but verify rather than assume.
	if dist := g.ShortestPaths(0); hasInf(dist) {
		return nil, errors.New("roadnet: generated network is disconnected")
	}
	return g, nil
}

func hasInf(xs []float64) bool {
	for _, x := range xs {
		if math.IsInf(x, 1) {
			return true
		}
	}
	return false
}
